"""Background maintenance plane: GC, wear leveling, live migration.

Nothing below the service ever *moved* data until this module: the
invalidation contract (FTL/directory generations, per-block
``layout_version``, ``PlaneArray.content_version()``) existed to make
movement safe, and the :class:`MaintenanceManager` is the component
that finally exercises it.  Three responsibilities:

* **Garbage collection.**  Deleted vectors and rolled-back writes
  leave programmed pages with no directory entry -- dead space that
  NAND can only reclaim by erasing a whole (sub-)block.  The manager
  scans per-block occupancy, picks victims greedy-by-invalid-ratio
  (wear-leveling tiebreak: fewest P/E cycles first, so erases spread),
  relocates the survivors with the chip's *copyback* command (Section
  2.1, footnote 3 -- an on-die inverse-sense + program that preserves
  programming mode, ESP margin, inversion polarity, and the source
  keystream index), erases the victim, and returns it to the
  controller's free list.

  Relocation is harder here than in an ordinary SSD: MWS computation
  requires co-located operands to *stay* co-located.  The allocator
  only ever places one string group per sub-block, so the manager
  moves a victim's live pages together into one fresh sub-block and
  repoints the group's allocation cursor -- congruence (same groups,
  same polarity) is preserved and plan templates stay valid; only the
  *bound* plans and result-cache stamps go stale, which the directory
  generation bump forces to rebind.

* **Probation drain.**  When the health plane quarantines a chip, the
  manager migrates its live chunk columns to healthy chips: each
  column's operands are read back (de-randomized, polarity restored)
  and re-written ESP-mode on the destination under the same chunk
  group, then the FTL's striping overlay redirects the column and
  bumps its generation.  Queries keep answering bit-identically while
  the sick chip sits out its probation empty.

* **Bad-block scrub.**  Stuck bad blocks from the fault plane are
  *retired* -- permanently excluded from the allocation pool -- so
  sustained writes stop tripping over them.

Timing: every cycle's chip-time delta (copyback programs, erases,
drain reads/writes) is emitted as preemptible, deadline-free
:func:`~repro.ssd.events.background_job` stage jobs at
:data:`~repro.ssd.events.MAINTENANCE_PRIORITY`, so background work
competes with foreground queries inside the service's one event
simulation -- under arbitration an urgent sense suspends an in-flight
GC copy, and the foreground p99 impact is measured, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import AllocationError, FlashCosmos
from repro.flash.errors import FlashFault, ReconstructionError
from repro.flash.geometry import BlockAddress, WordlineAddress
from repro.ssd.events import MAINTENANCE_PRIORITY, StageJob, background_job

__all__ = [
    "BlockOccupancy",
    "MaintenanceConfig",
    "MaintenanceManager",
    "MaintenanceStats",
    "WearSummary",
]


@dataclass(frozen=True)
class MaintenanceConfig:
    """Pacing and selection knobs of the maintenance plane.

    GC triggers when a plane's allocatable sub-blocks drop below
    ``gc_low_watermark`` and collects until ``gc_high_watermark`` are
    free (or no victim qualifies).  ``max_victims_per_cycle`` bounds
    how much background work one service window may enqueue -- the
    foreground-impact throttle.  A victim must carry at least
    ``min_invalid_pages`` dead pages (erasing a block to reclaim
    nothing just burns wear).  ``priority`` is the urgency background
    jobs carry in the event simulation.
    """

    gc_low_watermark: int = 2
    gc_high_watermark: int = 4
    max_victims_per_cycle: int = 4
    min_invalid_pages: int = 1
    priority: float = MAINTENANCE_PRIORITY
    #: Rebuild pacing: columns (or parity pages) re-materialized from
    #: parity per :meth:`MaintenanceManager.rebuild_cycle` call -- the
    #: foreground-impact throttle of the rebuild-on-repair plane,
    #: playing the same role ``max_victims_per_cycle`` plays for GC.
    rebuild_columns_per_cycle: int = 2

    def __post_init__(self) -> None:
        if self.gc_low_watermark < 0:
            raise ValueError("gc_low_watermark must be >= 0")
        if self.gc_high_watermark < self.gc_low_watermark:
            raise ValueError("gc_high_watermark must be >= gc_low_watermark")
        if self.max_victims_per_cycle < 1:
            raise ValueError("max_victims_per_cycle must be >= 1")
        if self.min_invalid_pages < 1:
            raise ValueError("min_invalid_pages must be >= 1")
        if self.rebuild_columns_per_cycle < 1:
            raise ValueError("rebuild_columns_per_cycle must be >= 1")


@dataclass(frozen=True)
class BlockOccupancy:
    """Valid-page accounting of one materialized sub-block."""

    address: BlockAddress
    programmed: int
    live: int
    pe_cycles: int
    programs: int

    @property
    def invalid(self) -> int:
        return self.programmed - self.live

    @property
    def invalid_ratio(self) -> float:
        if self.programmed == 0:
            return 0.0
        return self.invalid / self.programmed


@dataclass(frozen=True)
class WearSummary:
    """P/E-cycle spread across every materialized block."""

    blocks: int
    pe_min: int
    pe_max: int
    pe_mean: float
    programs_total: int

    @property
    def spread(self) -> int:
        return self.pe_max - self.pe_min


@dataclass
class MaintenanceStats:
    """Lifetime counters of one manager (reported by the service)."""

    blocks_reclaimed: int = 0
    pages_migrated: int = 0
    blocks_retired: int = 0
    chips_drained: int = 0
    pages_stuck: int = 0
    gc_cycles: int = 0
    busy_us: float = 0.0
    #: Chunk columns and parity pages re-materialized from parity by
    #: :meth:`MaintenanceManager.rebuild_cycle` after a chip loss.
    columns_rebuilt: int = 0


class MaintenanceManager:
    """GC, wear leveling, and live migration over one ``SmallSsd``."""

    def __init__(self, ssd, config: MaintenanceConfig | None = None) -> None:
        self.ssd = ssd
        self.config = config or MaintenanceConfig()
        self.stats = MaintenanceStats()
        #: Rebuild queue: ``("column", chunk)`` for a lost data column,
        #: ``("parity", group)`` for a lost parity page.  Filled by
        #: :meth:`drain_chip` when a quarantined chip's pages cannot be
        #: read (fail-stopped hardware), drained FIFO by
        #: :meth:`rebuild_cycle` at ``rebuild_columns_per_cycle`` per
        #: call.
        self.pending_rebuild: list[tuple[str, int]] = []
        self._rebuild_queued: set[tuple[str, int]] = set()

    # ------------------------------------------------------------------
    # Occupancy and wear accounting
    # ------------------------------------------------------------------

    def occupancy(self, chip_index: int) -> list[BlockOccupancy]:
        """Per-sub-block occupancy of one chip, materialized blocks
        only (untouched blocks hold nothing to account for)."""
        controller: FlashCosmos = self.ssd.controllers[chip_index]
        live: dict[BlockAddress, int] = {}
        for name in controller.directory.names():
            address = controller.directory.lookup(name).address
            key = address.block_address
            live[key] = live.get(key, 0) + 1
        out: list[BlockOccupancy] = []
        array = controller.chip.plane_array
        for address in array.materialized():
            block = array.block(address)
            programmed = sum(1 for m in block.metadata if m.programmed)
            out.append(
                BlockOccupancy(
                    address=address,
                    programmed=programmed,
                    live=live.get(address, 0),
                    pe_cycles=block.pe_cycles,
                    programs=block.programs,
                )
            )
        return out

    def free_subblocks(self, chip_index: int, plane: int = 0) -> int:
        return self.ssd.controllers[chip_index].free_subblocks(plane)

    def wear_summary(self) -> WearSummary:
        """Wear spread across all chips (see ``SmallSsd.wear_summary``)."""
        return self.ssd.wear_summary()

    # ------------------------------------------------------------------
    # Victim selection + collection
    # ------------------------------------------------------------------

    def select_victims(
        self, chip_index: int, plane: int = 0
    ) -> list[BlockOccupancy]:
        """GC candidates on one plane, best first: greedy by invalid
        ratio, then fewest P/E cycles (wear-leveling tiebreak), then
        address order for determinism.  Stuck bad blocks are excluded
        -- they cannot be erased, only retired by the scrub."""
        injector = self.ssd.fault_injector
        # Checked against the config set, not is_bad_block(): the
        # injector hook counts hits, and a GC scan is not a fault.
        bad = (
            frozenset(
                (int(c), int(p), int(b), int(s))
                for (c, p, b, s) in injector.config.bad_blocks
            )
            if injector is not None
            else frozenset()
        )
        candidates = [
            occ
            for occ in self.occupancy(chip_index)
            if occ.address.plane == plane
            and occ.invalid >= self.config.min_invalid_pages
            and (
                chip_index,
                occ.address.plane,
                occ.address.block,
                occ.address.subblock,
            )
            not in bad
        ]
        candidates.sort(
            key=lambda occ: (-occ.invalid_ratio, occ.pe_cycles, occ.address)
        )
        return candidates

    def _relocate_block(
        self, chip_index: int, victim: BlockAddress
    ) -> int:
        """Copyback every live page of ``victim`` into one freshly
        allocated sub-block of the same plane, preserving wordline
        order (compacted), and repoint directory entries and the
        open group cursor.  Returns pages moved; raises
        :class:`~repro.core.api.AllocationError` when no target
        sub-block is available (the caller stops collecting)."""
        controller: FlashCosmos = self.ssd.controllers[chip_index]
        chip = controller.chip
        live: list[tuple[int, str]] = []
        for name in controller.directory.names():
            operand = controller.directory.lookup(name)
            if operand.address.block_address == victim:
                live.append((operand.address.wordline, name))
        if not live:
            return 0
        live.sort()
        target = controller._allocate_subblock(victim.plane)
        for new_wl, (old_wl, name) in enumerate(live):
            source = WordlineAddress(
                victim.plane, victim.block, victim.subblock, old_wl
            )
            destination = WordlineAddress(
                target.plane, target.block, target.subblock, new_wl
            )
            chip.copyback(source, destination)
            controller.directory.relocate(name, destination)
        # The allocator places one string group per sub-block, so all
        # of the victim's survivors share (at most) one open cursor;
        # repoint it at the compacted copy so the group keeps growing
        # in the new sub-block.
        for key, (block, _next_wl) in list(controller._group_cursor.items()):
            if block == victim:
                controller._group_cursor[key] = (target, len(live))
        return len(live)

    def collect_plane(
        self,
        chip_index: int,
        plane: int = 0,
        *,
        target_free: int | None = None,
        max_victims: int | None = None,
        ready_at_s: float = 0.0,
    ) -> list[StageJob]:
        """Collect victims on one plane until ``target_free``
        sub-blocks are allocatable (or victims/budget run out).
        Functional state mutates immediately; the returned background
        jobs carry the chip-time cost into the event simulation."""
        controller: FlashCosmos = self.ssd.controllers[chip_index]
        chip = controller.chip
        budget = (
            max_victims
            if max_victims is not None
            else self.config.max_victims_per_cycle
        )
        jobs: list[StageJob] = []
        collected = 0
        while collected < budget:
            if (
                target_free is not None
                and controller.free_subblocks(plane) >= target_free
            ):
                break
            victims = self.select_victims(chip_index, plane)
            if not victims:
                break
            victim = victims[0]
            busy_before = chip.counters.busy_us
            try:
                moved = self._relocate_block(chip_index, victim.address)
            except AllocationError:
                # Nowhere to put the survivors: the plane is truly
                # wedged (all-live blocks); give up rather than loop.
                break
            try:
                chip.erase_block(victim.address)
            except FlashFault:
                # Erase failed under injection: the block keeps its
                # (now dead) pages and stays a candidate next cycle.
                self.stats.busy_us += chip.counters.busy_us - busy_before
                collected += 1
                continue
            controller.release_subblock(victim.address)
            # A fully-dead victim was never repointed by relocation:
            # drop any group cursor still aimed at it, or the group's
            # next write would land in a sub-block the allocator is
            # free to hand to someone else.
            for key, (block, _wl) in list(
                controller._group_cursor.items()
            ):
                if block == victim.address:
                    del controller._group_cursor[key]
            busy = chip.counters.busy_us - busy_before
            self.stats.blocks_reclaimed += 1
            self.stats.pages_migrated += moved
            self.stats.busy_us += busy
            collected += 1
            if busy > 0.0:
                jobs.append(
                    background_job(
                        f"chip{chip_index}",
                        busy * 1e-6,
                        ready_at=ready_at_s,
                        priority=self.config.priority,
                    )
                )
        return jobs

    def collect(
        self, chip_index: int | None = None, *, ready_at_s: float = 0.0
    ) -> list[StageJob]:
        """Collect every qualifying victim (no watermark, unbounded
        budget) on one chip or the whole SSD -- the foreground entry
        point tests and the drain path use."""
        chips = (
            range(len(self.ssd.controllers))
            if chip_index is None
            else (chip_index,)
        )
        jobs: list[StageJob] = []
        for index in chips:
            geometry = self.ssd.controllers[index].chip.geometry
            for plane in range(geometry.planes_per_die):
                jobs.extend(
                    self.collect_plane(
                        index,
                        plane,
                        max_victims=(
                            geometry.blocks_per_plane
                            * geometry.subblocks_per_block
                        ),
                        ready_at_s=ready_at_s,
                    )
                )
        return jobs

    def run_cycle(self, *, ready_at_s: float = 0.0) -> list[StageJob]:
        """One pacing decision (the service calls this per window):
        any plane under the low watermark is collected up to the high
        watermark within the per-cycle victim budget."""
        jobs: list[StageJob] = []
        ran = False
        for chip_index, controller in enumerate(self.ssd.controllers):
            geometry = controller.chip.geometry
            for plane in range(geometry.planes_per_die):
                if (
                    controller.free_subblocks(plane)
                    >= self.config.gc_low_watermark
                ):
                    continue
                ran = True
                jobs.extend(
                    self.collect_plane(
                        chip_index,
                        plane,
                        target_free=self.config.gc_high_watermark,
                        ready_at_s=ready_at_s,
                    )
                )
        if ran:
            self.stats.gc_cycles += 1
        return jobs

    # ------------------------------------------------------------------
    # Health-plane integration
    # ------------------------------------------------------------------

    def scrub_bad_blocks(self) -> int:
        """Retire every stuck bad block the fault plane declares, so
        allocation never hands one out.  Idempotent; returns how many
        blocks were newly retired."""
        injector = self.ssd.fault_injector
        if injector is None:
            return 0
        retired = 0
        for chip, plane, block, subblock in injector.config.bad_blocks:
            if not 0 <= chip < len(self.ssd.controllers):
                continue
            controller = self.ssd.controllers[chip]
            address = BlockAddress(
                plane=plane, block=block, subblock=subblock
            )
            if address in controller._retired_subblocks:
                continue
            controller.retire_subblock(address)
            retired += 1
        self.stats.blocks_retired += retired
        return retired

    def drain_chip(
        self,
        sick: int,
        *,
        healthy: list[int] | None = None,
        ready_at_s: float = 0.0,
    ) -> list[StageJob]:
        """Migrate a quarantined chip's live chunk columns to healthy
        chips (probation drain), then reclaim its dead blocks.

        Each chunk column moves whole -- every vector's ``name@chunk``
        operand lands on the same destination under its original chunk
        group -- so cross-vector co-location survives and the striping
        overlay (:meth:`FlashTranslationLayer.remap_chunk`) keeps the
        engine's queues consistent.  The whole column is *read before
        anything is written*, so a mid-column read failure can never
        leave it half-migrated.  A column that cannot be read -- any
        page on a stuck bad block, or the chip fail-stopped entirely
        -- is queued for parity rebuild when the SSD stripes parity
        (:meth:`rebuild_cycle` re-materializes it from survivors);
        without parity it stays parked as stuck, never silently
        dropped.  Parity pages recorded on the sick chip drain the
        same way, onto a chip hosting none of their group's data.
        GC reclamation of the drained chip is skipped when the chip is
        fail-stopped (there is no die left to erase).
        """
        ssd = self.ssd
        ftl = ssd.ftl
        if healthy is None:
            healthy = [i for i in range(len(ssd.chips)) if i != sick]
        healthy = [h for h in healthy if h != sick]
        if not healthy:
            return []
        injector = ssd.fault_injector
        bad = (
            frozenset(
                (int(c), int(p), int(b), int(s))
                for (c, p, b, s) in injector.config.bad_blocks
            )
            if injector is not None
            else frozenset()
        )
        busy_before = [c.counters.busy_us for c in ssd.chips]
        columns: dict[int, list[str]] = {}
        for name in ftl.vectors():
            for placement in ftl.lookup(name).placements:
                if placement.chip == sick:
                    columns.setdefault(placement.chunk, []).append(name)
        parity = getattr(ssd, "parity", False)
        moved_any = False
        src_ctrl = ssd.controllers[sick]
        for chunk in sorted(columns):
            names = columns[chunk]
            stuck = 0
            payloads: list[tuple[str, str, str | None, bool, object]] = []
            try:
                for name in names:
                    record = ftl.lookup(name)
                    chunk_name = ssd._chunk_operand_name(name, chunk)
                    stored = src_ctrl.stored(chunk_name)
                    address = stored.address
                    key = (
                        sick,
                        address.plane,
                        address.block,
                        address.subblock,
                    )
                    if key in bad:
                        stuck += 1
                        continue
                    logical = src_ctrl.chip.read_page(
                        address, inverse=stored.inverted
                    )
                    chunk_group = (
                        f"{record.group}#{chunk}" if record.group else None
                    )
                    payloads.append(
                        (
                            name,
                            chunk_name,
                            chunk_group,
                            stored.inverted,
                            logical,
                        )
                    )
            except FlashFault:
                stuck += 1
            if stuck:
                # The column cannot move whole: queue it for parity
                # rebuild, or park it as stuck without parity.
                if parity:
                    self._queue_rebuild("column", chunk)
                else:
                    self.stats.pages_stuck += stuck
                continue
            # Least-loaded healthy destination, index order on ties;
            # with parity, prefer chips free of the column's rotation
            # group (one chip loss must cost the group one page).
            candidates = healthy
            if parity:
                group = ftl.group_of_chunk(chunk)
                taken = {
                    ftl.chip_of_chunk(sibling)
                    for sibling in ftl.group_data_chunks(group)
                    if sibling != chunk
                }
                pchip = ftl.parity_chip(group)
                if pchip is not None:
                    taken.add(pchip)
                open_chips = [h for h in healthy if h not in taken]
                if open_chips:
                    candidates = open_chips
            dest = min(candidates, key=lambda h: (ftl.live_pages(h), h))
            dst_ctrl = ssd.controllers[dest]
            for name, chunk_name, chunk_group, inverted, logical in payloads:
                dst_ctrl.fc_write(
                    chunk_name,
                    logical,
                    group=chunk_group,
                    inverse=inverted,
                )
                src_ctrl.directory.unregister(chunk_name)
                self.stats.pages_migrated += 1
                moved_any = True
            ftl.remap_chunk(chunk, dest)
        if parity:
            moved_any |= self._drain_parity_pages(sick, healthy)
        if moved_any or columns:
            self.stats.chips_drained += 1
        # Reclaim the drained chip's now-dead blocks so it returns
        # from probation with free space -- unless the chip is
        # fail-stopped, where copyback/erase would only raise.
        if getattr(ssd.chips[sick], "offline", False):
            jobs: list[StageJob] = []
        else:
            jobs = self.collect(sick, ready_at_s=ready_at_s)
        deltas = [
            chip.counters.busy_us - before
            for chip, before in zip(ssd.chips, busy_before)
        ]
        # collect() already emitted jobs (and charged stats.busy_us)
        # for the sick chip's erases; emit migration jobs for the
        # remaining read/write time on every involved chip.
        already = sum(
            job.durations[0] * 1e6
            for job in jobs
            if job.resources[0] == f"chip{sick}"
        )
        for index, delta in enumerate(deltas):
            remaining = delta - (already if index == sick else 0.0)
            if remaining > 1e-12:
                self.stats.busy_us += remaining
                jobs.append(
                    background_job(
                        f"chip{index}",
                        remaining * 1e-6,
                        ready_at=ready_at_s,
                        priority=self.config.priority,
                    )
                )
        return jobs

    # ------------------------------------------------------------------
    # Parity rebuild (rebuild-on-repair)
    # ------------------------------------------------------------------

    def _queue_rebuild(self, kind: str, key: int) -> None:
        """Enqueue one lost column/parity page for rebuild, once."""
        entry = (kind, key)
        if entry not in self._rebuild_queued:
            self._rebuild_queued.add(entry)
            self.pending_rebuild.append(entry)

    def _drain_parity_pages(self, sick: int, healthy: list[int]) -> bool:
        """Move (or queue for rebuild) every parity page recorded on
        the sick chip.  Destination: a healthy chip hosting none of
        the group's data chunks, least-loaded first -- the same
        distinctness invariant ingest placement keeps."""
        ssd = self.ssd
        ftl = ssd.ftl
        src_ctrl = ssd.controllers[sick]
        moved_any = False
        size = ftl.parity_group_size
        for group, pchip in sorted(ftl.parity_placements().items()):
            if pchip != sick:
                continue
            names = [
                name
                for name in ftl.vectors()
                if ftl.lookup(name).n_chunks > group * size
            ]
            if not names:
                continue
            payloads: list[tuple[str, str, object]] = []
            try:
                for name in names:
                    pname = ssd._parity_operand_name(name, group)
                    stored = src_ctrl.stored(pname)
                    payloads.append(
                        (
                            name,
                            pname,
                            src_ctrl.chip.read_page(
                                stored.address, inverse=stored.inverted
                            ),
                        )
                    )
            except (FlashFault, KeyError):
                self._queue_rebuild("parity", group)
                continue
            members = {
                ftl.chip_of_chunk(c) for c in ftl.group_data_chunks(group)
            }
            candidates = [h for h in healthy if h not in members] or healthy
            dest = min(candidates, key=lambda h: (ftl.live_pages(h), h))
            dst_ctrl = ssd.controllers[dest]
            for name, pname, logical in payloads:
                record = ftl.lookup(name)
                dst_ctrl.fc_write(
                    pname,
                    logical,
                    group=ssd._parity_group_name(record.group, group),
                    inverse=False,
                )
                src_ctrl.directory.unregister(pname)
                self.stats.pages_migrated += 1
                moved_any = True
            ftl.set_parity_chip(group, dest)
        return moved_any

    def rebuild_cycle(
        self,
        *,
        healthy: list[int] | None = None,
        ready_at_s: float = 0.0,
    ) -> list[StageJob]:
        """One rebuild pacing decision (the service calls this per
        window, like :meth:`run_cycle` for GC): re-materialize up to
        ``rebuild_columns_per_cycle`` queued columns/parity pages from
        parity onto healthy chips.  Reconstruction reads and the
        re-writes are charged as background jobs on the chips that
        performed them, so rebuild traffic competes with foreground
        queries in the event simulation exactly like GC copyback.  An
        entry whose reconstruction fails (double fault) is dropped and
        counted stuck rather than looping forever."""
        ssd = self.ssd
        if not self.pending_rebuild:
            return []
        if healthy is None:
            healthy = list(range(len(ssd.chips)))
        healthy = [
            h
            for h in healthy
            if not getattr(ssd.chips[h], "offline", False)
        ]
        if not healthy:
            return []
        busy_before = [c.counters.busy_us for c in ssd.chips]
        done = 0
        while self.pending_rebuild and done < self.config.rebuild_columns_per_cycle:
            kind, key = self.pending_rebuild.pop(0)
            self._rebuild_queued.discard((kind, key))
            done += 1
            try:
                if kind == "column":
                    rebuilt = self._rebuild_column(key, healthy)
                else:
                    rebuilt = self._rebuild_parity(key, healthy)
            except (
                ReconstructionError,
                FlashFault,
                AllocationError,
                KeyError,
            ):
                self.stats.pages_stuck += 1
                continue
            if rebuilt:
                self.stats.columns_rebuilt += 1
        jobs: list[StageJob] = []
        for index, before in enumerate(busy_before):
            delta = ssd.chips[index].counters.busy_us - before
            if delta > 1e-12:
                self.stats.busy_us += delta
                jobs.append(
                    background_job(
                        f"chip{index}",
                        delta * 1e-6,
                        ready_at=ready_at_s,
                        priority=self.config.priority,
                    )
                )
        return jobs

    def _rebuild_column(self, chunk: int, healthy: list[int]) -> bool:
        """Re-materialize one lost data column from parity: every
        vector's ``name@chunk`` is reconstructed by XOR of surviving
        peers + parity and written whole onto one healthy chip, then
        the striping overlay redirects the column (generation bump --
        the same invalidation contract as a probation drain)."""
        ssd = self.ssd
        ftl = ssd.ftl
        names = [
            name
            for name in ftl.vectors()
            if chunk < ftl.lookup(name).n_chunks
        ]
        if not names:
            return False
        current = ftl.chip_of_chunk(chunk)
        if not getattr(ssd.chips[current], "offline", False):
            # Already drained or re-mapped since it was queued.
            return False
        # Reconstruct the whole column before writing anything: a
        # double fault surfaces here and leaves no half-column behind.
        payloads = [
            (name, ssd.reconstruct_chunk_bits(name, chunk))
            for name in names
        ]
        group = ftl.group_of_chunk(chunk)
        taken = {
            ftl.chip_of_chunk(sibling)
            for sibling in ftl.group_data_chunks(group)
            if sibling != chunk
        }
        pchip = ftl.parity_chip(group)
        if pchip is not None:
            taken.add(pchip)
        candidates = [h for h in healthy if h not in taken] or list(healthy)
        dest = min(candidates, key=lambda h: (ftl.live_pages(h), h))
        src_ctrl = ssd.controllers[current]
        dst_ctrl = ssd.controllers[dest]
        for name, bits in payloads:
            record = ftl.lookup(name)
            chunk_name = ssd._chunk_operand_name(name, chunk)
            chunk_group = (
                f"{record.group}#{chunk}" if record.group else None
            )
            # Logical bits re-inverted physically on the destination,
            # preserving the template congruence of inverted operands.
            dst_ctrl.fc_write(
                chunk_name,
                bits,
                group=chunk_group,
                inverse=record.inverted,
            )
            src_ctrl.directory.unregister(chunk_name)
        ftl.remap_chunk(chunk, dest)
        return True

    def _rebuild_parity(self, group: int, healthy: list[int]) -> bool:
        """Re-materialize one lost parity page per vector of a
        rotation group: recompute the XOR of the group's (surviving)
        data chunks and write it to a healthy chip hosting none of
        them."""
        ssd = self.ssd
        ftl = ssd.ftl
        size = ftl.parity_group_size
        names = [
            name
            for name in ftl.vectors()
            if ftl.lookup(name).n_chunks > group * size
        ]
        if not names:
            return False
        current = ftl.parity_chip(group)
        if current is None or not getattr(
            ssd.chips[current], "offline", False
        ):
            return False
        payloads: list[tuple[str, str | None, np.ndarray]] = []
        for name in names:
            record = ftl.lookup(name)
            member_bits = []
            for c in ftl.group_data_chunks(group):
                if c >= record.n_chunks:
                    continue
                ctrl = ssd.controllers[ftl.chip_of_chunk(c)]
                stored = ctrl.stored(ssd._chunk_operand_name(name, c))
                member_bits.append(
                    ctrl.chip.read_page(
                        stored.address, inverse=stored.inverted
                    )
                )
            payloads.append(
                (
                    name,
                    record.group,
                    np.bitwise_xor.reduce(np.vstack(member_bits), axis=0),
                )
            )
        members = {
            ftl.chip_of_chunk(c) for c in ftl.group_data_chunks(group)
        }
        candidates = [h for h in healthy if h not in members] or list(
            healthy
        )
        dest = min(candidates, key=lambda h: (ftl.live_pages(h), h))
        src_ctrl = ssd.controllers[current]
        dst_ctrl = ssd.controllers[dest]
        for name, vgroup, bits in payloads:
            pname = ssd._parity_operand_name(name, group)
            dst_ctrl.fc_write(
                pname,
                bits,
                group=ssd._parity_group_name(vgroup, group),
                inverse=False,
            )
            src_ctrl.directory.unregister(pname)
        ftl.set_parity_chip(group, dest)
        return True
