"""Functional multi-chip SSD: stripes vectors across Flash-Cosmos
chips and evaluates expressions with plan-once/bind-per-chunk
execution.

``SmallSsd`` is the functional counterpart of the performance model:
real bits move through real (scaled-down) chips, so examples and
integration tests can run end-to-end queries -- write day bitmaps,
issue ``query(expr)``, get the exact result vector back -- while the
cost counters aggregate the same quantities the performance model
estimates at full scale.

Queries are served by a :class:`~repro.ssd.query_engine.QueryEngine`:
the expression is planned *once* into a relocatable template, bound
per chunk against each chip's directory, dispatched through per-chip
queues, and the chunk job stream is replayed through the event
simulator -- so every functional query also reports the pipelined
makespan (see :mod:`repro.ssd.query_engine`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import FlashCosmos
from repro.core.expressions import Expression
from repro.flash.chip import NandFlashChip
from repro.flash.errors import (
    FlashFault,
    OperatingCondition,
    ReconstructionError,
)
from repro.flash.geometry import ChipGeometry
from repro.flash.packing import pack_rows, parity_words
from repro.ssd.ftl import FlashTranslationLayer


@dataclass(frozen=True)
class QueryResult:
    """Result of one SSD-level in-flash query.

    ``makespan_us`` is the event-simulated pipelined completion time
    of the query's chunk job stream (die sense -> channel -> external
    link); ``latency_us`` remains the raw per-chip-maximum sense time
    the seed model reported.  ``template_hit`` tells whether the query
    was served from the plan-template cache without planning.
    """

    bits: np.ndarray
    n_senses: int
    latency_us: float
    energy_nj: float
    makespan_us: float = 0.0
    template_hit: bool = False


class SmallSsd:
    """A small, fully functional Flash-Cosmos SSD."""

    def __init__(
        self,
        n_chips: int = 4,
        geometry: ChipGeometry | None = None,
        *,
        condition: OperatingCondition | None = None,
        inject_errors: bool = False,
        esp_extra: float = 0.9,
        seed: int = 0,
        packed: bool = True,
        fault_injector=None,
        parity: bool = False,
    ) -> None:
        self.geometry = geometry or ChipGeometry(
            planes_per_die=1,
            blocks_per_plane=64,
            subblocks_per_block=2,
            wordlines_per_string=48,
            page_size_bits=1024,
        )
        self.esp_extra = esp_extra
        #: With ``packed`` (the default) vectors are bit-packed once at
        #: ingest and the whole functional query path moves uint64
        #: words; ``packed=False`` keeps the one-byte-per-bit
        #: evaluation for equivalence testing and benchmarking.
        #: Error-injecting SSDs sense per cell through V_TH and
        #: produce unpacked bits, so they keep the byte path outright.
        self.packed = packed and not inject_errors
        self.chips = [
            NandFlashChip(
                self.geometry,
                inject_errors=inject_errors,
                seed=seed + i,
                packed=packed,
            )
            for i in range(n_chips)
        ]
        if condition is not None:
            for chip in self.chips:
                chip.set_condition(condition)
        self.controllers = [
            FlashCosmos(chip, esp_extra=esp_extra) for chip in self.chips
        ]
        #: RAID-5-style parity striping: every rotation group of
        #: ``n_chips - 1`` data chunks carries one parity page (the
        #: word-wise XOR of the group, computed on the packed plane at
        #: ingest) on a chip hosting none of the group's data.  Losing
        #: any single chip then costs each group at most one page, and
        #: lost chunks are reconstructed by XOR of the survivors.
        if parity and not self.packed:
            raise ValueError(
                "parity striping requires the packed word plane "
                "(parity is a bulk XOR over packed pages)"
            )
        if parity and n_chips < 2:
            raise ValueError("parity striping requires >= 2 chips")
        self.parity = parity
        self.ftl = FlashTranslationLayer(
            n_chips=n_chips, page_bits=self.geometry.page_size_bits
        )
        self.ftl.parity = parity
        # Deferred import: the engine module type-checks against this
        # one.
        from repro.ssd.query_engine import QueryEngine

        self.engine = QueryEngine(self)
        #: Optional fault-injection plane shared by every chip (see
        #: :mod:`repro.flash.faults`); ``None`` keeps all fast paths.
        self.fault_injector = None
        if fault_injector is not None:
            self.attach_fault_injector(fault_injector)

    def attach_fault_injector(self, injector) -> None:
        """Attach a :class:`~repro.flash.faults.FaultInjector` to every
        chip (chip ``i`` keyed as stream ``i``), or detach with
        ``None``.  The engine's recovery path and the service's health
        tracking both read it from here."""
        self.fault_injector = injector
        for i, chip in enumerate(self.chips):
            chip.attach_fault_injector(injector, chip_id=i)

    @property
    def page_bits(self) -> int:
        return self.geometry.page_size_bits

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def write_vector(
        self,
        name: str,
        bits: np.ndarray,
        *,
        group: str | None = None,
        inverse: bool = False,
    ) -> None:
        """Stripe one logical bit vector across the chips.

        Chunks land on chips round-robin; within each chip the operand
        keeps its group (string-group co-location) and inversion flag.
        A vector whose length is not a page multiple stores its final
        chunk zero-padded; reads and queries truncate back to the true
        length.  If any chunk write fails, the registration is rolled
        back -- the FTL record and every already-written chunk's
        directory entry are removed, so the SSD is never left
        half-registered (the programmed pages themselves are leaked
        until garbage collection, like any interrupted write).
        """
        data = np.asarray(bits, dtype=np.uint8)
        record = self.ftl.register_vector(
            name,
            data.size,
            group=group,
            inverted=inverse,
            esp_extra=self.esp_extra,
        )
        page = self.page_bits
        chunk_words: np.ndarray | None = None
        if self.packed and record.n_chunks:
            # Pack the whole vector once at ingest (zero-padding the
            # final chunk); every chunk write below hands packed words
            # straight down to the chip.
            padded = np.zeros(record.n_chunks * page, dtype=np.uint8)
            padded[: data.size] = data
            chunk_words = pack_rows(padded.reshape(record.n_chunks, page))
        written: list[tuple[int, str]] = []
        try:
            for placement in record.placements:
                if chunk_words is not None:
                    chunk_bits: np.ndarray = chunk_words[placement.chunk]
                else:
                    chunk_bits = data[
                        placement.chunk * page : (placement.chunk + 1) * page
                    ]
                    if chunk_bits.size < page:
                        chunk_bits = np.concatenate(
                            [
                                chunk_bits,
                                np.zeros(
                                    page - chunk_bits.size, dtype=np.uint8
                                ),
                            ]
                        )
                controller = self.controllers[placement.chip]
                # Only the *same* chunk offset of different vectors must
                # share a string group (they are combined bit-by-bit);
                # distinct offsets get distinct groups so a group never
                # exhausts its 48 wordlines on one vector's own chunks.
                chunk_group = (
                    f"{group}#{placement.chunk}" if group else None
                )
                chunk_name = self._chunk_operand_name(name, placement.chunk)
                controller.fc_write(
                    chunk_name,
                    chunk_bits,
                    group=chunk_group,
                    inverse=inverse,
                )
                written.append((placement.chip, chunk_name))
            if self.parity and chunk_words is not None:
                self._write_parity(name, record, chunk_words, group, written)
        except Exception:
            for chip, chunk_name in written:
                self.controllers[chip].directory.unregister(chunk_name)
            self.ftl.unregister(name)
            raise

    def _write_parity(
        self,
        name: str,
        record,
        chunk_words: np.ndarray,
        group: str | None,
        written: list[tuple[int, str]],
    ) -> None:
        """Write one parity page per rotation group of a freshly
        ingested vector: the word-wise XOR of the group's packed data
        chunks, placed on a chip hosting none of them (recorded in the
        FTL so queries and maintenance find it after the data chips
        are gone).  Appends to ``written`` so a failed stripe rolls
        parity back with the data."""
        ftl = self.ftl
        for g in range(ftl.parity_group_count(record.n_chunks)):
            members = [
                c for c in ftl.group_data_chunks(g) if c < record.n_chunks
            ]
            pwords = parity_words(chunk_words[members], self.page_bits)
            chip = ftl.parity_chip(g)
            if chip is None:
                chip = ftl.choose_parity_chip(g)
                ftl.set_parity_chip(g, chip)
            parity_name = self._parity_operand_name(name, g)
            self.controllers[chip].fc_write(
                parity_name,
                pwords,
                group=self._parity_group_name(group, g),
                inverse=False,
            )
            written.append((chip, parity_name))

    def delete_vector(self, name: str) -> None:
        """Drop a vector: unregister every chunk operand (and parity
        pages, when striped with parity) and the FTL record.  The
        programmed pages become dead space -- NAND cannot overwrite in
        place -- until the maintenance plane's garbage collector
        erases their blocks and returns them to the allocation pool."""
        record = self.ftl.lookup(name)
        for placement in record.placements:
            self.controllers[placement.chip].directory.unregister(
                self._chunk_operand_name(name, placement.chunk)
            )
        if self.parity:
            for g in range(self.ftl.parity_group_count(record.n_chunks)):
                chip = self.ftl.parity_chip(g)
                if chip is not None:
                    self.controllers[chip].directory.unregister(
                        self._parity_operand_name(name, g)
                    )
        self.ftl.unregister(name)

    def wear_summary(self):
        """P/E-cycle spread across every materialized block of every
        chip (:class:`~repro.ssd.maintenance.WearSummary`)."""
        from repro.ssd.maintenance import WearSummary

        pe: list[int] = []
        programs = 0
        for chip in self.chips:
            array = chip.plane_array
            for address in array.materialized():
                block = array.block(address)
                pe.append(block.pe_cycles)
                programs += block.programs
        if not pe:
            return WearSummary(
                blocks=0, pe_min=0, pe_max=0, pe_mean=0.0, programs_total=0
            )
        return WearSummary(
            blocks=len(pe),
            pe_min=min(pe),
            pe_max=max(pe),
            pe_mean=sum(pe) / len(pe),
            programs_total=programs,
        )

    def maintenance(self, config=None):
        """Open (or return) the background maintenance plane over this
        SSD (:class:`~repro.ssd.maintenance.MaintenanceManager`): GC,
        wear leveling, probation drain, bad-block scrub."""
        from repro.ssd.maintenance import MaintenanceManager

        manager = getattr(self, "_maintenance", None)
        if manager is None or config is not None:
            manager = MaintenanceManager(self, config)
            self._maintenance = manager
        return manager

    def _chunk_operand_name(self, name: str, chunk: int) -> str:
        # Chunks striped to the same chip get distinct operand names;
        # equal bit offsets of different vectors share chip + group.
        return f"{name}@{chunk}"

    def _parity_operand_name(self, name: str, group: int) -> str:
        # Parity pages are per-vector, per-rotation-group operands;
        # ``!`` cannot appear in a chunk operand name, so parity never
        # collides with data in a chip directory.
        return f"{name}!p{group}"

    def _parity_group_name(self, group: str | None, g: int) -> str | None:
        # Parity pages of one string group co-locate like data chunks
        # do, but in their own per-rotation-group string group so they
        # never consume a data group's 48 wordlines.
        return f"{group}!p{g}" if group else None

    # ------------------------------------------------------------------
    # Redundancy: chip loss and parity reconstruction
    # ------------------------------------------------------------------

    def kill_chip(self, chip: int) -> None:
        """Take one chip permanently offline (fail-stop): every
        subsequent sense/program/erase on it raises
        :class:`~repro.flash.errors.ChipUnavailableError`.  With
        parity striping the engine reconstructs the lost chunks from
        survivors and the maintenance plane rebuilds them; without it,
        queries touching the chip fail with a typed error."""
        if not 0 <= chip < len(self.chips):
            raise ValueError(
                f"chip {chip} outside 0..{len(self.chips) - 1}"
            )
        self.chips[chip].offline = True

    def reconstruct_chunk_bits(self, name: str, chunk: int) -> np.ndarray:
        """Rebuild one lost chunk's logical bits from parity: XOR of
        the rotation group's surviving data chunks and its parity page
        (RAID-5 reconstruction).  Shared by the query engine's
        degraded read path and the maintenance plane's rebuild job.

        Every read below is a plain page read on a *survivor* chip, so
        callers charging reconstruction as real sense work can observe
        the survivor counters move.  Raises
        :class:`~repro.flash.errors.ReconstructionError` when parity
        is off, the parity page is unlocatable, or a survivor read
        fails (double fault)."""
        record = self.ftl.lookup(name)
        if not self.parity:
            raise ReconstructionError(
                f"cannot reconstruct {name!r}@{chunk}: parity striping "
                "is disabled on this SSD",
                chunk=chunk,
            )
        if not 0 <= chunk < record.n_chunks:
            raise ReconstructionError(
                f"chunk {chunk} outside vector {name!r}"
                f" (n_chunks={record.n_chunks})",
                chunk=chunk,
            )
        g = self.ftl.group_of_chunk(chunk)
        parity_chip = self.ftl.parity_chip(g)
        if parity_chip is None:
            raise ReconstructionError(
                f"no recorded parity placement for group {g} of "
                f"{name!r}",
                chunk=chunk,
            )
        try:
            ctrl = self.controllers[parity_chip]
            stored = ctrl.stored(self._parity_operand_name(name, g))
            acc = ctrl.chip.read_page(
                stored.address, inverse=stored.inverted
            )
            for sibling in self.ftl.group_data_chunks(g):
                if sibling == chunk or sibling >= record.n_chunks:
                    continue
                sib_ctrl = self.controllers[self.ftl.chip_of_chunk(sibling)]
                sib_stored = sib_ctrl.stored(
                    self._chunk_operand_name(name, sibling)
                )
                acc = np.bitwise_xor(
                    acc,
                    sib_ctrl.chip.read_page(
                        sib_stored.address, inverse=sib_stored.inverted
                    ),
                )
        except (FlashFault, KeyError) as exc:
            raise ReconstructionError(
                f"reconstruction of {name!r}@{chunk} failed: a "
                f"survivor or parity read raised {exc!r} (double "
                "fault or missing page)",
                chunk=chunk,
            ) from exc
        return acc

    def service(self, **kwargs) -> "QueryService":
        """Open a query service front-end over this SSD.

        The service (:mod:`repro.service`) accepts timed submissions
        from many clients (optionally with priorities and deadlines),
        batches them into admission windows (fixed grid or adaptive),
        and executes each window with multi-query scheduling,
        cross-query sense sharing, and -- when enabled -- the
        cross-window result cache -- ``kwargs`` forward to
        :class:`~repro.service.service.QueryService` (``window_us``,
        ``max_window_queries``, ``policy``, ``share_senses``,
        ``result_cache``, ``tenant_weights``, ``adaptive_window``,
        ...).
        """
        from repro.service.service import QueryService

        return QueryService(self, **kwargs)

    def query(self, expr: Expression) -> QueryResult:
        """Evaluate a bulk bitwise expression over stored vectors.

        The expression is applied chunk-wise: chunk c of every operand
        lives on the same chip (identical striping), so each chip
        computes its chunks independently -- chips work in parallel in
        a real SSD, hence latency aggregates as the per-chip maximum.
        The plan is built once (template cache) and bound to each
        chunk's addresses; planning cost is independent of the number
        of chunks.
        """
        return self.engine.query(expr)

    def read_vector(self, name: str) -> np.ndarray:
        """Read a stored vector back through regular page reads.

        On the packed plane each chunk stays packed through the sense
        and latch pipeline inside ``read_page``; the single unpack per
        chunk happens at its off-chip transfer, i.e. this result
        boundary.
        """
        record = self.ftl.lookup(name)
        pieces = []
        for placement in record.placements:
            controller = self.controllers[placement.chip]
            stored = controller.stored(
                self._chunk_operand_name(name, placement.chunk)
            )
            bits = controller.chip.read_page(
                stored.address, inverse=stored.inverted
            )
            pieces.append(bits)
        return np.concatenate(pieces)[: record.n_bits]
