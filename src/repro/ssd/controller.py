"""Functional multi-chip SSD: stripes vectors across Flash-Cosmos
chips and fans expressions out chunk-by-chunk.

``SmallSsd`` is the functional counterpart of the performance model:
real bits move through real (scaled-down) chips, so examples and
integration tests can run end-to-end queries -- write day bitmaps,
issue ``query(expr)``, get the exact result vector back -- while the
cost counters aggregate the same quantities the performance model
estimates at full scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import FlashCosmos
from repro.core.expressions import Expression, operand_names
from repro.flash.chip import NandFlashChip
from repro.flash.errors import OperatingCondition
from repro.flash.geometry import ChipGeometry
from repro.ssd.ftl import FlashTranslationLayer


@dataclass(frozen=True)
class QueryResult:
    """Result of one SSD-level in-flash query."""

    bits: np.ndarray
    n_senses: int
    latency_us: float
    energy_nj: float


class SmallSsd:
    """A small, fully functional Flash-Cosmos SSD."""

    def __init__(
        self,
        n_chips: int = 4,
        geometry: ChipGeometry | None = None,
        *,
        condition: OperatingCondition | None = None,
        inject_errors: bool = False,
        esp_extra: float = 0.9,
        seed: int = 0,
    ) -> None:
        self.geometry = geometry or ChipGeometry(
            planes_per_die=1,
            blocks_per_plane=64,
            subblocks_per_block=2,
            wordlines_per_string=48,
            page_size_bits=1024,
        )
        self.chips = [
            NandFlashChip(
                self.geometry, inject_errors=inject_errors, seed=seed + i
            )
            for i in range(n_chips)
        ]
        if condition is not None:
            for chip in self.chips:
                chip.set_condition(condition)
        self.controllers = [
            FlashCosmos(chip, esp_extra=esp_extra) for chip in self.chips
        ]
        self.ftl = FlashTranslationLayer(
            n_chips=n_chips, page_bits=self.geometry.page_size_bits
        )

    @property
    def page_bits(self) -> int:
        return self.geometry.page_size_bits

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def write_vector(
        self,
        name: str,
        bits: np.ndarray,
        *,
        group: str | None = None,
        inverse: bool = False,
    ) -> None:
        """Stripe one logical bit vector across the chips.

        Chunks land on chips round-robin; within each chip the operand
        keeps its group (string-group co-location) and inversion flag.
        """
        data = np.asarray(bits, dtype=np.uint8)
        record = self.ftl.register_vector(
            name,
            data.size,
            group=group,
            inverted=inverse,
            esp_extra=0.9,
        )
        page = self.page_bits
        for placement in record.placements:
            chunk_bits = data[
                placement.chunk * page : (placement.chunk + 1) * page
            ]
            controller = self.controllers[placement.chip]
            # Only the *same* chunk offset of different vectors must
            # share a string group (they are combined bit-by-bit);
            # distinct offsets get distinct groups so a group never
            # exhausts its 48 wordlines on one vector's own chunks.
            chunk_group = f"{group}#{placement.chunk}" if group else None
            controller.fc_write(
                self._chunk_operand_name(name, placement.chunk),
                chunk_bits,
                group=chunk_group,
                inverse=inverse,
            )

    def _chunk_operand_name(self, name: str, chunk: int) -> str:
        # Chunks striped to the same chip get distinct operand names;
        # equal bit offsets of different vectors share chip + group.
        return f"{name}@{chunk}"

    def query(self, expr: Expression) -> QueryResult:
        """Evaluate a bulk bitwise expression over stored vectors.

        The expression is applied chunk-wise: chunk c of every operand
        lives on the same chip (identical striping), so each chip
        computes its chunks independently -- chips work in parallel in
        a real SSD, hence latency aggregates as the per-chip maximum.
        """
        names = sorted(operand_names(expr))
        if not names:
            raise ValueError("expression references no operands")
        self.ftl.validate_co_located(names)
        n_chunks = self.ftl.lookup(names[0]).n_chunks

        busy_before = [c.counters.busy_us for c in self.chips]
        energy_before = [c.counters.energy_nj for c in self.chips]
        senses_before = [c.counters.senses for c in self.chips]

        pieces: list[np.ndarray] = []
        for chunk in range(n_chunks):
            chip_index = self.ftl.chip_of_chunk(chunk)
            controller = self.controllers[chip_index]
            chunk_expr = _rename_operands(
                expr, {n: self._chunk_operand_name(n, chunk) for n in names}
            )
            pieces.append(controller.fc_read(chunk_expr).bits)

        latency = max(
            c.counters.busy_us - b
            for c, b in zip(self.chips, busy_before)
        )
        energy = sum(
            c.counters.energy_nj - b
            for c, b in zip(self.chips, energy_before)
        )
        senses = sum(
            c.counters.senses - b
            for c, b in zip(self.chips, senses_before)
        )
        return QueryResult(
            bits=np.concatenate(pieces) if pieces else np.empty(0, np.uint8),
            n_senses=senses,
            latency_us=latency,
            energy_nj=energy,
        )

    def read_vector(self, name: str) -> np.ndarray:
        """Read a stored vector back through regular page reads."""
        record = self.ftl.lookup(name)
        pieces = []
        for placement in record.placements:
            controller = self.controllers[placement.chip]
            stored = controller.stored(
                self._chunk_operand_name(name, placement.chunk)
            )
            bits = controller.chip.read_page(
                stored.address, inverse=stored.inverted
            )
            pieces.append(bits)
        return np.concatenate(pieces)


def _rename_operands(expr: Expression, mapping: dict[str, str]) -> Expression:
    from repro.core.expressions import And, Not, Operand, Or, Xor

    if isinstance(expr, Operand):
        return Operand(mapping[expr.name])
    if isinstance(expr, Not):
        return Not(_rename_operands(expr.expr, mapping))
    if isinstance(expr, And):
        return And(*(_rename_operands(t, mapping) for t in expr.terms))
    if isinstance(expr, Or):
        return Or(*(_rename_operands(t, mapping) for t in expr.terms))
    if isinstance(expr, Xor):
        return Xor(
            _rename_operands(expr.left, mapping),
            _rename_operands(expr.right, mapping),
        )
    raise TypeError(f"unknown expression node {type(expr).__name__}")
