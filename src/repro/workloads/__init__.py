"""The paper's three real-world workloads (Section 7).

Each module provides (a) the *performance-model* sweep -- the operand
counts, vector sizes and per-chunk sense counts that parameterize the
Fig. 17/18 evaluation -- and (b) a *functional* generator producing
actual bit vectors for the end-to-end examples and integration tests.
"""

from repro.workloads.base import WorkloadPoint
from repro.workloads.bitmap_index import (
    bmi_point_queries,
    bmi_sweep,
    generate_login_bitmaps,
    run_bmi_query_reference,
)
from repro.workloads.image_segmentation import (
    generate_segmentation_masks,
    ims_segment_queries,
    ims_sweep,
)
from repro.workloads.kclique import (
    generate_kclique_graph,
    kclique_star_reference,
    kcs_star_queries,
    kcs_sweep,
)

__all__ = [
    "WorkloadPoint",
    "bmi_point_queries",
    "bmi_sweep",
    "generate_kclique_graph",
    "generate_login_bitmaps",
    "generate_segmentation_masks",
    "ims_segment_queries",
    "ims_sweep",
    "kclique_star_reference",
    "kcs_star_queries",
    "kcs_sweep",
    "run_bmi_query_reference",
]
