"""Image-segmentation workload (IMS, Section 7).

YUV color segmentation: pixel p belongs to color C when
Y(p,C) . U(p,C) . V(p,C) -- a 3-operand bulk bitwise AND over
bit vectors of I x 800 x 600 x 4 bits (I images, 4 colors).  The
result is comparable in size to the inputs (up to 44 GiB at
I = 200,000), which makes IMS transfer-bound: Flash-Cosmos and
ParaBit perform almost identically here (Fig. 17(b)) -- an important
*negative* crossover the reproduction must preserve.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import WorkloadPoint

PIXELS_PER_IMAGE = 800 * 600
N_COLORS = 4
IMAGE_SWEEP = (10_000, 50_000, 100_000, 200_000)


def ims_point(n_images: int) -> WorkloadPoint:
    bits = n_images * PIXELS_PER_IMAGE * N_COLORS
    return WorkloadPoint(
        workload="IMS",
        label=f"I={n_images // 1000}k",
        parameter=n_images,
        n_operands=3,
        vector_bytes=bits // 8,
        n_queries=1,
        host_bitcount=False,
    )


def ims_sweep() -> list[WorkloadPoint]:
    """The Fig. 17(b)/18(b) sweep: I in {10, 50, 100, 200} x 10^3."""
    return [ims_point(i) for i in IMAGE_SWEEP]


# ----------------------------------------------------------------------
# Functional generator
# ----------------------------------------------------------------------


def generate_segmentation_masks(
    n_pixels: int,
    rng: np.random.Generator,
    *,
    match_rates: tuple[float, float, float] = (0.6, 0.5, 0.55),
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic Y/U/V membership bit vectors for one color plane.

    Rates reflect that each YUV component independently includes a
    pixel with moderate probability, so the AND selects a minority
    region -- the shape real segmentation produces.
    """
    y_rate, u_rate, v_rate = match_rates
    y = (rng.random(n_pixels) < y_rate).astype(np.uint8)
    u = (rng.random(n_pixels) < u_rate).astype(np.uint8)
    v = (rng.random(n_pixels) < v_rate).astype(np.uint8)
    return y, u, v


def segment_reference(
    y: np.ndarray, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Host-side oracle: the segmented region is Y . U . V."""
    return (y & u & v).astype(np.uint8)


def ims_segment_queries(
    color_planes: list[tuple[str, str, str]],
    rng: np.random.Generator,
    n_queries: int,
):
    """A stream of segmentation queries: each ANDs one color's stored
    (Y, U, V) membership vectors.  With only ``N_COLORS`` distinct
    shapes the stream is naturally repeat-heavy -- the best case for
    cross-query sense sharing."""
    from repro.core.expressions import Operand, and_all

    if not color_planes:
        raise ValueError("need at least one color plane triple")
    return [
        and_all(
            [Operand(n) for n in color_planes[
                int(rng.integers(len(color_planes)))
            ]]
        )
        for _ in range(n_queries)
    ]
