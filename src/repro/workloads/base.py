"""Workload descriptors consumed by the performance layer."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ssd.pipeline import DataflowSpec

#: Wordlines per string group -- the intra-block MWS operand limit.
STRING_GROUP_WORDLINES = 48


@dataclass(frozen=True)
class WorkloadPoint:
    """One sweep point of one workload.

    ``n_operands`` bit vectors of ``vector_bytes`` each are combined
    per query; ``n_queries`` queries run back to back (1 for BMI/IMS,
    one per clique for KCS).  ``extra_or_operand`` marks KCS's final
    OR with the clique vector (stored in a different block, merged by
    combined intra+inter MWS per Equation 1).
    ``host_bitcount`` marks a result-side bit-count on the host CPU.
    """

    workload: str
    label: str
    parameter: float
    n_operands: int
    vector_bytes: int
    n_queries: int = 1
    extra_or_operand: bool = False
    host_bitcount: bool = False

    def __post_init__(self) -> None:
        if self.n_operands < 1:
            raise ValueError("n_operands must be >= 1")
        if self.vector_bytes < 1:
            raise ValueError("vector_bytes must be >= 1")
        if self.n_queries < 1:
            raise ValueError("n_queries must be >= 1")

    # ------------------------------------------------------------------
    # Derived model inputs
    # ------------------------------------------------------------------

    @property
    def operands_per_query(self) -> int:
        return self.n_operands + (1 if self.extra_or_operand else 0)

    @property
    def result_bytes(self) -> float:
        return float(self.vector_bytes) * self.n_queries

    @property
    def input_bytes(self) -> float:
        return float(self.vector_bytes) * self.operands_per_query * (
            self.n_queries
        )

    @property
    def fc_senses_per_chunk(self) -> float:
        """MWS commands Flash-Cosmos needs per result chunk.

        AND groups of up to 48 operands resolve in one intra-block
        sense each and AND-accumulate in the sensing latch; a trailing
        OR operand rides along with the *last* AND group via combined
        intra+inter MWS (Equation 1) when there is exactly one group,
        otherwise it costs one more sense (OR-merge through the cache
        latch)."""
        groups = math.ceil(self.n_operands / STRING_GROUP_WORDLINES)
        if self.extra_or_operand and groups > 1:
            return groups + 1
        return groups

    @property
    def fc_blocks_per_sense(self) -> int:
        """Blocks activated by the typical FC sense of this workload."""
        return 2 if self.extra_or_operand else 1

    @property
    def pb_senses_per_chunk(self) -> float:
        """ParaBit: one full sense per operand."""
        return float(self.operands_per_query)

    def dataflow_spec(self) -> DataflowSpec:
        return DataflowSpec(
            n_operands=self.operands_per_query,
            result_bytes=self.result_bytes,
            fc_senses_per_chunk=self.fc_senses_per_chunk,
            pb_senses_per_chunk=self.pb_senses_per_chunk,
            fc_blocks_per_sense=self.fc_blocks_per_sense,
            # The host ingests the full result either way (bit-count
            # for BMI, buffering for IMS/KCS); energy accounting
            # distinguishes the CPU work, timing uses stream rate.
            host_bytes_per_result_byte=1.0,
        )

    @property
    def fc_wordlines_per_sense(self) -> float:
        """Average wordlines per MWS sense (for the power model)."""
        return self.operands_per_query / self.fc_senses_per_chunk
