"""Bitmap-index workload (BMI, Section 7).

A database tracks daily log-in activity of 800 million users as one
bit vector per day.  The query "how many users were active every day
of the past m months?" is a bulk bitwise AND over d = ~30.4 x m day
vectors followed by a bit-count.  Operand counts range from 30 (m=1)
to 1,095 (m=36) -- the workload where MWS's single-sense multi-operand
capability shines (Fig. 17(a)).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import WorkloadPoint

#: Paper parameters.
N_USERS = 800_000_000
MONTH_SWEEP = (1, 3, 6, 12, 24, 36)


def days_for_months(months: int) -> int:
    """Operand count for an m-month query (365/12 days per month,
    matching the paper's 30..1,095 range)."""
    if months < 1:
        raise ValueError("months must be >= 1")
    return round(months * 365 / 12)


def bmi_point(months: int, *, n_users: int = N_USERS) -> WorkloadPoint:
    return WorkloadPoint(
        workload="BMI",
        label=f"m={months}",
        parameter=months,
        n_operands=days_for_months(months),
        vector_bytes=n_users // 8,
        n_queries=1,
        host_bitcount=True,
    )


def bmi_sweep(*, n_users: int = N_USERS) -> list[WorkloadPoint]:
    """The Fig. 17(a)/18(a) sweep: m in {1, 3, 6, 12, 24, 36}."""
    return [bmi_point(m, n_users=n_users) for m in MONTH_SWEEP]


# ----------------------------------------------------------------------
# Functional generator (examples / integration tests)
# ----------------------------------------------------------------------


def generate_login_bitmaps(
    n_users: int,
    n_days: int,
    rng: np.random.Generator,
    *,
    activity: float = 0.8,
) -> list[np.ndarray]:
    """Synthetic daily log-in bitmaps.

    Each user logs in on any given day with probability ``activity``;
    a small always-active core guarantees non-trivial query results.
    """
    if not 0.0 <= activity <= 1.0:
        raise ValueError("activity must be a probability")
    core = max(1, n_users // 50)
    days = []
    for _ in range(n_days):
        day = (rng.random(n_users) < activity).astype(np.uint8)
        day[:core] = 1
        days.append(day)
    return days


def run_bmi_query_reference(day_bitmaps: list[np.ndarray]) -> tuple[np.ndarray, int]:
    """Host-side oracle: AND all day vectors, then count active users."""
    if not day_bitmaps:
        raise ValueError("no day bitmaps")
    result = np.bitwise_and.reduce(np.stack(day_bitmaps), axis=0)
    return result, int(result.sum())


def bmi_point_queries(
    day_names: list[str],
    rng: np.random.Generator,
    n_queries: int,
    *,
    min_days: int = 2,
    shape_pool: int = 4,
):
    """A stream of analytical point queries over stored day bitmaps:
    each is an AND over a contiguous day window ("active every day of
    range [i, j)").

    Real dashboards re-issue a handful of canonical ranges (last week,
    last month, ...), so windows are drawn from a pool of
    ``shape_pool`` pre-chosen ranges -- the repeated query shapes that
    template caching and cross-query sense sharing exploit.
    """
    from repro.core.expressions import Operand, and_all

    if min_days < 1 or min_days > len(day_names):
        raise ValueError("min_days out of range for the day set")
    if shape_pool < 1:
        raise ValueError("shape_pool must be >= 1")
    windows = []
    for _ in range(shape_pool):
        span = int(rng.integers(min_days, len(day_names) + 1))
        start = int(rng.integers(0, len(day_names) - span + 1))
        windows.append((start, start + span))
    return [
        and_all(
            [Operand(day_names[d]) for d in range(*windows[
                int(rng.integers(len(windows)))
            ])]
        )
        for _ in range(n_queries)
    ]
