"""K-clique star listing workload (KCS, Section 7).

With vertices represented as adjacency bit vectors, a k-clique star is
computed as ``AND of the k member adjacency vectors, OR the clique's
own membership vector`` -- a set-centric formulation (SISA, MICRO'21).
Flash-Cosmos evaluates the AND and the OR *in one sense* when the
clique vector sits in a different block (combined intra+inter MWS,
Equation 1).  The paper sweeps k from 8 to 64 over a 32-M-vertex graph
with 1,024 cliques.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import WorkloadPoint

N_VERTICES = 32_000_000
N_CLIQUES = 1_024
K_SWEEP = (8, 16, 24, 32, 48, 64)


def kcs_point(
    k: int, *, n_vertices: int = N_VERTICES, n_cliques: int = N_CLIQUES
) -> WorkloadPoint:
    return WorkloadPoint(
        workload="KCS",
        label=f"k={k}",
        parameter=k,
        n_operands=k,
        vector_bytes=n_vertices // 8,
        n_queries=n_cliques,
        extra_or_operand=True,  # OR with the clique-membership vector
        host_bitcount=False,
    )


def kcs_sweep(
    *, n_vertices: int = N_VERTICES, n_cliques: int = N_CLIQUES
) -> list[WorkloadPoint]:
    """The Fig. 17(c)/18(c) sweep: k in {8, 16, 24, 32, 48, 64}."""
    return [
        kcs_point(k, n_vertices=n_vertices, n_cliques=n_cliques)
        for k in K_SWEEP
    ]


# ----------------------------------------------------------------------
# Functional generator (uses networkx when available)
# ----------------------------------------------------------------------


def generate_kclique_graph(
    n_vertices: int,
    k: int,
    rng: np.random.Generator,
    *,
    background_edge_prob: float = 0.05,
    n_satellites: int = 0,
) -> tuple[np.ndarray, list[int]]:
    """A random graph with one planted k-clique.

    Returns the dense adjacency bit matrix (uint8, with self-loops set
    so a clique member's adjacency vector includes itself, as the
    set-centric formulation requires) and the clique's vertex list.
    ``n_satellites`` additionally plants vertices connected to every
    clique member, guaranteeing a non-trivial star.
    """
    if k > n_vertices:
        raise ValueError("clique larger than graph")
    if n_satellites > n_vertices - k:
        raise ValueError("too many satellites for the graph size")
    adjacency = (
        rng.random((n_vertices, n_vertices)) < background_edge_prob
    ).astype(np.uint8)
    adjacency = adjacency | adjacency.T  # undirected
    members = list(rng.choice(n_vertices, size=k + n_satellites,
                              replace=False))
    clique = members[:k]
    for i in clique:
        for j in clique:
            adjacency[i, j] = 1
    for satellite in members[k:]:
        for member in clique:
            adjacency[satellite, member] = 1
            adjacency[member, satellite] = 1
    np.fill_diagonal(adjacency, 1)
    return adjacency, clique


def clique_membership_vector(n_vertices: int, clique: list[int]) -> np.ndarray:
    vector = np.zeros(n_vertices, dtype=np.uint8)
    vector[clique] = 1
    return vector


def kcs_star_queries(
    member_names: list[str],
    clique_names: list[str],
    rng: np.random.Generator,
    n_queries: int,
    *,
    k: int | None = None,
):
    """A scan stream of k-clique star queries over stored adjacency
    rows: each query ANDs ``k`` member adjacency vectors and ORs in
    one clique-membership vector (Section 7's formulation; the OR
    rides the last sense via combined intra+inter MWS when the
    membership vector sits in its own block).

    A scan revisits the same cliques with the same member sets, so
    member subsets are sampled per clique deterministically -- the
    repeated shapes an admission window dedups.
    """
    from repro.core.expressions import Operand, Or, and_all

    if k is None:
        k = min(3, len(member_names))
    if not 1 <= k <= len(member_names):
        raise ValueError("k out of range for the member set")
    if not clique_names:
        raise ValueError("need at least one clique-membership vector")
    # One fixed member subset per clique: queries against the same
    # clique are identical, as in a repeated scan.
    subsets = {
        clique: sorted(
            rng.choice(len(member_names), size=k, replace=False).tolist()
        )
        for clique in clique_names
    }
    out = []
    for _ in range(n_queries):
        clique = clique_names[int(rng.integers(len(clique_names)))]
        members = and_all(
            [Operand(member_names[i]) for i in subsets[clique]]
        )
        out.append(Or(members, Operand(clique)))
    return out


def kclique_star_reference(
    adjacency: np.ndarray, clique: list[int]
) -> np.ndarray:
    """Host-side oracle: the k-clique star bit vector.

    AND of the members' adjacency rows selects the vertices connected
    to *all* clique members; OR with the membership vector adds the
    clique itself (Section 7's formulation)."""
    rows = adjacency[clique]
    common = np.bitwise_and.reduce(rows, axis=0)
    return (common | clique_membership_vector(adjacency.shape[0], clique)
            ).astype(np.uint8)
