"""Energy model of the four platforms (Section 7, 'Energy Modeling').

The paper measures host energy with Intel RAPL, DRAM energy from the
DDR4 power model, SSD energy from Samsung 980 Pro values, and NAND
energy from its real-device characterization.  We reproduce the same
accounting with per-byte transfer energies, per-operation sense
energies (from :mod:`repro.flash.power`), and background power while
a component is active:

* NAND sensing: 45 mW per die at read, scaled by the MWS power factor
  (Figure 14) and duration.
* Channel (ONFI bus) transfers: ~5 pJ/bit.
* External link (PCIe Gen4): ~7.5 pJ/bit.
* DRAM traffic: ~19 pJ/bit (DDR4 activate+IO).
* Host CPU streaming compute: memory-bound AND/OR chews ~5 nJ/B of
  package energy (RAPL at ~60 W / 12 GB/s); ingesting a result vector
  (bit-count for BMI, buffering for IMS/KCS) is far cheaper
  (~1 nJ/B) since it is read-mostly with negligible write-back.
* SSD background (controller + DRAM): ~4 W while the drive is active.
* ISP accelerator: 93 pJ per 64-B operation (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flash.power import PowerModel
from repro.ssd.config import SsdConfig
from repro.ssd.pipeline import Platform, PlatformTiming


@dataclass(frozen=True)
class EnergyParameters:
    nand_read_power_w: float = 0.045
    e_channel_per_byte: float = 40e-12
    e_external_per_byte: float = 60e-12
    e_dram_per_byte: float = 150e-12
    e_cpu_bitwise_per_byte: float = 5e-9
    e_cpu_result_per_byte: float = 1e-9
    ssd_background_power_w: float = 4.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-component energy (joules)."""

    sense_j: float
    channel_j: float
    external_j: float
    dram_j: float
    cpu_j: float
    accelerator_j: float
    background_j: float

    @property
    def total_j(self) -> float:
        return (
            self.sense_j
            + self.channel_j
            + self.external_j
            + self.dram_j
            + self.cpu_j
            + self.accelerator_j
            + self.background_j
        )


@dataclass
class EnergyModel:
    config: SsdConfig
    params: EnergyParameters = field(default_factory=EnergyParameters)
    power_model: PowerModel = field(default_factory=PowerModel)

    def _sense_energy_j(
        self,
        platform: Platform,
        timing: PlatformTiming,
        fc_wordlines_per_sense: float,
        fc_blocks_per_sense: int,
    ) -> float:
        p = self.params
        if platform is Platform.FC:
            t_sense = self.config.t_mws_us
            wordlines = max(1, round(fc_wordlines_per_sense))
            factor = self.power_model.mws_power_factor(
                max(wordlines, fc_blocks_per_sense), fc_blocks_per_sense
            )
        else:
            t_sense = self.config.t_read_us
            factor = 1.0
        per_sense_j = p.nand_read_power_w * factor * t_sense * 1e-6
        return timing.n_die_senses * per_sense_j

    def evaluate(
        self,
        platform: Platform,
        timing: PlatformTiming,
        *,
        bitwise_host_bytes: float,
        result_host_bytes: float,
        fc_wordlines_per_sense: float = 1.0,
        fc_blocks_per_sense: int = 1,
    ) -> EnergyBreakdown:
        """Energy of one platform run.

        ``bitwise_host_bytes`` is data the host CPU streams through
        bitwise ops (OSP only); ``result_host_bytes`` is result data
        the host ingests (bit-count for BMI, buffering otherwise).
        """
        p = self.params
        sense = self._sense_energy_j(
            platform, timing, fc_wordlines_per_sense, fc_blocks_per_sense
        )
        channel = timing.internal_bytes * p.e_channel_per_byte
        external = timing.external_bytes * p.e_external_per_byte
        # Everything arriving at the host crosses DRAM at least once.
        dram = timing.external_bytes * p.e_dram_per_byte
        cpu = (
            bitwise_host_bytes * p.e_cpu_bitwise_per_byte
            + result_host_bytes * p.e_cpu_result_per_byte
        )
        accelerator = 0.0
        if platform is Platform.ISP:
            ops = timing.internal_bytes / 64.0
            accelerator = ops * self.config.isp_accel_pj_per_64b * 1e-12
        background = timing.makespan_s * p.ssd_background_power_w
        return EnergyBreakdown(
            sense_j=sense,
            channel_j=channel,
            external_j=external,
            dram_j=dram,
            cpu_j=cpu,
            accelerator_j=accelerator,
            background_j=background,
        )
