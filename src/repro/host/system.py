"""End-to-end evaluation of the four computing platforms (Section 7).

``SystemEvaluator`` runs a workload point through the pipelined
timing model and the energy model for OSP / ISP / PB / FC, yielding
the speedup and energy-efficiency numbers of Figures 17 and 18.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.host.energy import EnergyBreakdown, EnergyModel, EnergyParameters
from repro.ssd.config import SsdConfig, table1_config
from repro.ssd.pipeline import PipelineModel, Platform, PlatformTiming
from repro.workloads.base import WorkloadPoint


@dataclass(frozen=True)
class ExecutionReport:
    """Time and energy of one platform on one workload point."""

    workload: WorkloadPoint
    platform: Platform
    timing: PlatformTiming
    energy: EnergyBreakdown

    @property
    def time_s(self) -> float:
        return self.timing.makespan_s

    @property
    def energy_j(self) -> float:
        return self.energy.total_j

    @property
    def bits_per_joule(self) -> float:
        """Figure 18's metric: workload bits processed per joule."""
        return self.workload.input_bytes * 8 / self.energy_j


@dataclass
class SystemEvaluator:
    """Evaluates workload points across platforms on one SSD config."""

    config: SsdConfig = field(default_factory=table1_config)
    host_bw_bytes_per_s: float = 12.0e9
    energy_params: EnergyParameters = field(default_factory=EnergyParameters)

    def __post_init__(self) -> None:
        self.pipeline = PipelineModel(
            self.config, host_bw_bytes_per_s=self.host_bw_bytes_per_s
        )
        self.energy_model = EnergyModel(self.config, self.energy_params)
        self._cache: dict[tuple[WorkloadPoint, Platform], ExecutionReport] = {}

    def evaluate(
        self, point: WorkloadPoint, platform: Platform
    ) -> ExecutionReport:
        key = (point, platform)
        if key in self._cache:
            return self._cache[key]
        spec = point.dataflow_spec()
        timing = self.pipeline.evaluate(platform, spec)
        bitwise_host = (
            point.input_bytes if platform is Platform.OSP else 0.0
        )
        energy = self.energy_model.evaluate(
            platform,
            timing,
            bitwise_host_bytes=bitwise_host,
            result_host_bytes=point.result_bytes,
            fc_wordlines_per_sense=point.fc_wordlines_per_sense,
            fc_blocks_per_sense=point.fc_blocks_per_sense,
        )
        report = ExecutionReport(
            workload=point, platform=platform, timing=timing, energy=energy
        )
        self._cache[key] = report
        return report

    def evaluate_all(
        self, point: WorkloadPoint
    ) -> dict[Platform, ExecutionReport]:
        return {p: self.evaluate(point, p) for p in Platform}

    # ------------------------------------------------------------------
    # Figure 17 / 18 style comparisons
    # ------------------------------------------------------------------

    def speedups_over_osp(
        self, point: WorkloadPoint
    ) -> dict[Platform, float]:
        reports = self.evaluate_all(point)
        baseline = reports[Platform.OSP].time_s
        return {p: baseline / r.time_s for p, r in reports.items()}

    def energy_efficiency_over_osp(
        self, point: WorkloadPoint
    ) -> dict[Platform, float]:
        reports = self.evaluate_all(point)
        baseline = reports[Platform.OSP].energy_j
        return {p: baseline / r.energy_j for p, r in reports.items()}

    def sweep_speedups(
        self, points: list[WorkloadPoint]
    ) -> list[tuple[WorkloadPoint, dict[Platform, float]]]:
        return [(p, self.speedups_over_osp(p)) for p in points]

    def sweep_energy(
        self, points: list[WorkloadPoint]
    ) -> list[tuple[WorkloadPoint, dict[Platform, float]]]:
        return [(p, self.energy_efficiency_over_osp(p)) for p in points]


def geometric_mean(values: list[float]) -> float:
    if not values:
        raise ValueError("geometric mean of no values")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean needs positive values")
        product *= v
    return product ** (1.0 / len(values))
