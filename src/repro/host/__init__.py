"""Host-system models: CPU/DRAM throughput and energy, and the
end-to-end evaluation of the four computing platforms (Section 7)."""

from repro.host.energy import EnergyBreakdown, EnergyModel, EnergyParameters
from repro.host.system import (
    ExecutionReport,
    SystemEvaluator,
)

__all__ = [
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParameters",
    "ExecutionReport",
    "SystemEvaluator",
]
