"""Service-level metrics: latency percentiles, throughput, sharing.

``EngineStats`` counts what the query engine amortized (templates,
binds, shared senses) over its lifetime; ``ServiceStats`` reports what
one service run *delivered*: per-query latency percentiles on the
virtual clock, sustained queries per second over the traffic span,
and how much of the window's sensing work cross-query sharing
eliminated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Distribution of per-query service latencies (microseconds,
    submission to last chunk delivered)."""

    n: int
    mean_us: float
    p50_us: float
    p99_us: float
    max_us: float

    @classmethod
    def from_latencies(cls, latencies_us: Sequence[float]) -> "LatencySummary":
        if not len(latencies_us):
            return cls(n=0, mean_us=0.0, p50_us=0.0, p99_us=0.0, max_us=0.0)
        arr = np.asarray(latencies_us, dtype=np.float64)
        return cls(
            n=int(arr.size),
            mean_us=float(arr.mean()),
            p50_us=float(np.percentile(arr, 50)),
            p99_us=float(np.percentile(arr, 99)),
            max_us=float(arr.max()),
        )


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate outcome of one :meth:`QueryService.run`."""

    n_queries: int
    n_windows: int
    #: Bound per-chunk plans the windows contained in total.
    n_chunk_tasks: int
    #: Sensing operations that actually ran on the chips.
    n_senses: int
    #: Chunk tasks served by fanning out another task's identical
    #: sense, and the sensing operations that saved.
    shared_plans: int
    shared_senses: int
    #: Queries served without any planning (template + bound-plan
    #: cache hits threaded explicitly through ``prepare``).
    template_hits: int
    latency: LatencySummary
    #: Sustained rate over the span from first submission to last
    #: completed transfer.
    throughput_qps: float
    span_us: float
    #: Completion time of the last window on the virtual clock.
    makespan_us: float
    #: Busiest pipeline resource across the whole run.
    bottleneck: str

    @property
    def dedup_ratio(self) -> float:
        """Fraction of chunk tasks served by a shared sense."""
        if self.n_chunk_tasks == 0:
            return 0.0
        return self.shared_plans / self.n_chunk_tasks

    @property
    def sense_savings(self) -> float:
        """Fraction of sensing work sharing eliminated."""
        total = self.n_senses + self.shared_senses
        if total == 0:
            return 0.0
        return self.shared_senses / total

    def describe(self) -> str:
        lat = self.latency
        return (
            f"{self.n_queries} queries / {self.n_windows} windows: "
            f"{self.throughput_qps:.0f} q/s sustained, "
            f"p50 {lat.p50_us:.0f} us, p99 {lat.p99_us:.0f} us, "
            f"{self.n_senses} senses "
            f"({self.shared_senses} shared away, "
            f"dedup {self.dedup_ratio:.0%}), "
            f"bottleneck {self.bottleneck}"
        )
