"""Service-level metrics: latency percentiles, throughput, sharing,
caching, and deadline conformance.

``EngineStats`` counts what the query engine amortized (templates,
binds, shared senses) over its lifetime; ``ServiceStats`` reports what
one service run *delivered*: per-query latency percentiles on the
virtual clock, sustained queries per second over the traffic span,
how much of the window's sensing work cross-query sharing eliminated,
how much the cross-window result cache absorbed before the engine was
even asked, and -- under the ``edf`` policy -- how many stated
deadlines were met.

Sharing and caching both remove flash work, at different points of
the pipeline: a *shared* chunk rode a sibling task's sense in the
same window; a *cached* chunk was served from a previous window's
memoized words and never reached the engine.  The dedup ratio counts
both -- a ratio that only counted in-window sharing would *drop* when
the cache absorbs repeat traffic, under-reporting exactly the windows
the service handles best.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Distribution of per-query service latencies (microseconds,
    submission to last chunk delivered)."""

    n: int
    mean_us: float
    p50_us: float
    p99_us: float
    max_us: float

    @classmethod
    def from_latencies(cls, latencies_us: Sequence[float]) -> "LatencySummary":
        if not len(latencies_us):
            return cls(n=0, mean_us=0.0, p50_us=0.0, p99_us=0.0, max_us=0.0)
        arr = np.asarray(latencies_us, dtype=np.float64)
        return cls(
            n=int(arr.size),
            mean_us=float(arr.mean()),
            p50_us=float(np.percentile(arr, 50)),
            p99_us=float(np.percentile(arr, 99)),
            max_us=float(arr.max()),
        )


@dataclass(frozen=True)
class ServiceStats:
    """Aggregate outcome of one :meth:`QueryService.run`."""

    n_queries: int
    n_windows: int
    #: Bound per-chunk plans the windows contained in total.
    n_chunk_tasks: int
    #: Sensing operations that actually ran on the chips.
    n_senses: int
    #: Chunk tasks served by fanning out another task's identical
    #: sense within the same window, and the sensing operations that
    #: saved.
    shared_plans: int
    shared_senses: int
    #: Chunk tasks served from the cross-window result cache (no
    #: engine dispatch at all), and the sensing operations that saved.
    cached_plans: int
    cached_senses: int
    #: Queries served without any planning (template + bound-plan
    #: cache hits threaded explicitly through ``prepare``).
    template_hits: int
    #: Queries that carried a deadline, and how many completed by it
    #: (exact, from the event simulation's completion times).
    n_deadlines: int
    deadlines_met: int
    latency: LatencySummary
    #: Sustained rate over the span from first submission to last
    #: completed transfer.
    throughput_qps: float
    span_us: float
    #: Completion time of the last window on the virtual clock.
    makespan_us: float
    #: Busiest pipeline resource across the whole run.
    bottleneck: str
    #: Sense suspensions the channel/die arbiter performed (0 without
    #: ``preemption``), and the virtual time their suspend/resume
    #: penalties cost.
    preemptions: int = 0
    preemption_overhead_us: float = 0.0
    #: Busy fraction of every pipeline resource over the run's
    #: makespan -- ``chip0``/``chan1``/``ext`` style names from the
    #: event simulation, whatever resources the jobs actually named.
    resource_utilization: dict[str, float] = field(default_factory=dict)
    #: Fault events the injector raised during this run (transient
    #: sense faults, program/erase failures, stalls, bad-block hits);
    #: 0 without an attached :class:`~repro.flash.faults.FaultInjector`.
    faults_injected: int = 0
    #: Extra recovered sense attempts the engine's retry loop spent.
    fault_retries: int = 0
    #: Chunk executions served on the degraded V_TH path (retry
    #: exhaustion fallback or a health-degraded chip).
    degraded_senses: int = 0
    #: Times a chip's breaker tripped open during this run.
    quarantines: int = 0
    #: Queries that surfaced a typed fault error instead of a result.
    queries_failed: int = 0
    #: Virtual time charged for recovery (retry backoff + injected
    #: stalls), stamped into the event simulation as stage-0 delay.
    fault_overhead_us: float = 0.0
    #: Missed deadlines on queries whose window execution paid any
    #: fault cost (retries, degraded senses, or recovery delay) --
    #: the misses attributable to the fault plane rather than load.
    fault_attributed_misses: int = 0
    #: Redundancy plane (parity striping): chunk results rebuilt from
    #: parity after a chip failure, the survivor senses that cost, and
    #: the survivor chip time charged into the event simulation --
    #: kept distinct from the retry plane's ``fault_retries``/
    #: ``fault_overhead_us`` so "recovered via parity" and "recovered
    #: via retry" are separable in :meth:`describe`.
    reconstructed_plans: int = 0
    reconstruction_senses: int = 0
    reconstruction_overhead_us: float = 0.0
    #: Chips that fail-stopped (went permanently offline) during this
    #: run, and lost columns/parity pages the maintenance plane
    #: re-materialized from parity onto survivors.
    chips_lost: int = 0
    columns_rebuilt: int = 0
    #: Background maintenance plane (:mod:`repro.ssd.maintenance`),
    #: this run's deltas: victim sub-blocks erased and returned to the
    #: allocation pool, live pages relocated (GC copyback + probation
    #: drain), stuck bad blocks retired from allocation, quarantined
    #: chips drained, and the chip time the background jobs occupied
    #: inside the event simulation.  All 0 without ``maintenance=``.
    blocks_reclaimed: int = 0
    pages_migrated: int = 0
    blocks_retired: int = 0
    chips_drained: int = 0
    maintenance_overhead_us: float = 0.0
    #: P/E-cycle wear spread across every materialized block at the
    #: end of the run (wear leveling keeps max - min small).
    wear_min: int = 0
    wear_max: int = 0
    wear_mean: float = 0.0

    @property
    def wear_spread(self) -> int:
        """Max - min P/E cycles across materialized blocks."""
        return self.wear_max - self.wear_min

    def _class_utilization(self, prefix: str) -> dict[str, float]:
        return {
            name: value
            for name, value in self.resource_utilization.items()
            if name.rstrip("0123456789") == prefix
        }

    @property
    def channel_utilization(self) -> dict[str, float]:
        """Per-channel busy fraction (``chan0`` ... ``chanN``)."""
        return self._class_utilization("chan")

    @property
    def chip_utilization(self) -> dict[str, float]:
        """Per-die/way busy fraction (``chip0`` ... ``chipN``)."""
        return self._class_utilization("chip")

    @property
    def dedup_ratio(self) -> float:
        """Fraction of chunk tasks served without executing a sense --
        by an in-window shared sense *or* a cross-window cache hit.
        Counting both keeps the ratio truthful when the cache absorbs
        repeat traffic upstream of the engine's dedup."""
        if self.n_chunk_tasks == 0:
            return 0.0
        return (self.shared_plans + self.cached_plans) / self.n_chunk_tasks

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of chunk tasks served from the cross-window
        result cache."""
        if self.n_chunk_tasks == 0:
            return 0.0
        return self.cached_plans / self.n_chunk_tasks

    @property
    def sense_savings(self) -> float:
        """Fraction of sensing work sharing and caching eliminated."""
        total = self.n_senses + self.shared_senses + self.cached_senses
        if total == 0:
            return 0.0
        return (self.shared_senses + self.cached_senses) / total

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of deadline-carrying queries that missed."""
        if self.n_deadlines == 0:
            return 0.0
        return 1.0 - self.deadlines_met / self.n_deadlines

    @property
    def failure_rate(self) -> float:
        """Fraction of queries that surfaced an error."""
        if self.n_queries == 0:
            return 0.0
        return self.queries_failed / self.n_queries

    def describe(self) -> str:
        if self.n_queries == 0:
            # A degraded run can complete with every window empty (or
            # every query failed before admission); report that
            # plainly instead of rendering rates over nothing.
            return (
                f"0 queries / {self.n_windows} windows: idle run, "
                f"no latency distribution"
            )
        lat = self.latency
        text = (
            f"{self.n_queries} queries / {self.n_windows} windows: "
            f"{self.throughput_qps:.0f} q/s sustained, "
            f"p50 {lat.p50_us:.0f} us, p99 {lat.p99_us:.0f} us, "
            f"{self.n_senses} senses "
            f"({self.shared_senses} shared away, "
            f"{self.cached_senses} cache-served, "
            f"dedup {self.dedup_ratio:.0%}, "
            f"cache hit-rate {self.cache_hit_rate:.0%}), "
            f"bottleneck {self.bottleneck}"
        )
        if self.n_deadlines:
            text += (
                f", deadlines {self.deadlines_met}/{self.n_deadlines} met"
            )
        if self.preemptions:
            text += (
                f", {self.preemptions} preemptions "
                f"({self.preemption_overhead_us:.1f} us overhead)"
            )
        if (
            self.faults_injected
            or self.queries_failed
            or self.degraded_senses
            or self.quarantines
        ):
            text += (
                f", {self.faults_injected} faults injected "
                f"({self.fault_retries} retries, "
                f"{self.degraded_senses} degraded senses, "
                f"{self.quarantines} quarantines, "
                f"{self.queries_failed} failed, "
                f"{self.fault_overhead_us:.1f} us recovery)"
            )
        if self.reconstructed_plans or self.chips_lost:
            text += (
                f", parity: {self.reconstructed_plans} chunks "
                f"reconstructed ({self.reconstruction_senses} survivor "
                f"senses, {self.reconstruction_overhead_us:.1f} us), "
                f"{self.chips_lost} chips lost, "
                f"{self.columns_rebuilt} columns rebuilt"
            )
        if (
            self.blocks_reclaimed
            or self.pages_migrated
            or self.blocks_retired
            or self.chips_drained
        ):
            text += (
                f", maintenance: {self.blocks_reclaimed} blocks "
                f"reclaimed, {self.pages_migrated} pages migrated, "
                f"{self.blocks_retired} retired, "
                f"{self.chips_drained} chips drained "
                f"({self.maintenance_overhead_us:.1f} us background)"
            )
        if self.wear_max:
            text += (
                f", wear {self.wear_min}-{self.wear_max} P/E "
                f"(mean {self.wear_mean:.2f})"
            )
        return text
