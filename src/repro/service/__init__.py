"""Query service layer: admission windows, multi-query chip
scheduling, and cross-query sense sharing.

This package is the layer above the plan-template
:class:`~repro.ssd.query_engine.QueryEngine`: where the engine serves
one caller's query (or an explicit batch) synchronously, the service
accepts *concurrent submissions from many simulated clients on a
virtual clock* and turns them into scheduled, deduplicated window
executions -- the system-scale execution-engine move of the in-DRAM
bulk-bitwise line, applied to Flash-Cosmos's in-flash queries.

Design
======

**Virtual clock and clients** (:mod:`~repro.service.clock`,
:mod:`~repro.service.clients`).  Traffic is simulated-async: client
generators wrap the paper's workloads (bitmap-index point queries,
k-clique star scans, YUV segmentation) and stamp their query streams
with arrival times from configurable arrival processes (Poisson,
uniform, bursty).  Nothing runs on threads; the whole trace is
deterministic, which lets the property suite compare every served
query bit-for-bit against the synchronous oracle.

**Admission windows** (:mod:`~repro.service.admission`).  Submissions
are grouped on a fixed ``window_us`` grid (with an optional
``max_queries`` early close), or -- with ``adaptive_window`` -- on
windows whose length the admission controller retunes to the observed
arrival rate (short under bursts for p99, long under sparse traffic
for sharing).  A window is the service's unit of optimization:
queries inside one window may be reordered and share work; the window
close time is when its pipeline jobs become ready.

**Multi-query scheduling** (:mod:`~repro.service.scheduler`).  All
bound per-chunk plans of a window's queries are merged into per-chip
schedules.  Chunk placement is fixed by the FTL striping, so the
scheduler orders rather than places: share groups stay adjacent,
each chip drains longest-sense-first (LPT), and chips emit
longest-remaining-work-first -- minimizing window makespan instead of
any single query's latency.  The ``edf`` policy instead schedules
toward *service-level objectives*: queries may carry priorities and
deadlines, deadline traffic drains earliest-deadline-first, and the
deadline-free bulk drains weighted-fair across tenants so scan
traffic no longer starves point queries.  The event simulator breaks
FCFS ties by submission order, so the emitted order *is* the
schedule.

**Cross-query sense sharing**
(:meth:`~repro.ssd.query_engine.QueryEngine.execute_tasks`).  Bound
plans are frozen value objects, so identical bound commands -- same
chip, same MWS command/address sequence -- are detected by value and
executed once; the packed result words fan out to every subscribing
query at zero flash cost.  This extends MWS's one-sense-many-operands
reuse across the *queries* of a window.

**Cross-window result caching**
(:class:`~repro.ssd.query_engine.ResultCache`, enabled with
``result_cache=True``).  Sharing only helps within a window; the
result cache memoizes executed plans' packed words *across* windows
(and service runs), stamped with the layout generation of their chip,
so repeat traffic skips the sensing engine entirely until any
register/unregister/program/erase moves the generation.

**Closed-loop clients** (:mod:`~repro.service.clients`).  Beyond the
open-loop arrival processes, :class:`ClosedLoopController` +
:func:`run_closed_loop` model client backpressure: an AIMD loop backs
the offered rate off multiplicatively while observed p99 exceeds the
target and probes additively below it.

**Fault tolerance** (:mod:`~repro.service.health`,
:mod:`~repro.flash.faults`).  With a deterministic
:class:`~repro.flash.faults.FaultInjector` attached to the SSD,
windows execute under the engine's bounded retry/backoff recovery
with degraded-mode (V_TH path) fallback; the service folds every
window's per-chip error rates into an EWMA circuit breaker that
degrades or quarantines sick chips, the scheduler prices degraded
chips and parks quarantined ones, and any quarantine transition bumps
the chip's directory generation so bound plans and cached results
rebind.  Injection off keeps every fast path bit-for-bit untouched.

**Metrics** (:mod:`~repro.service.metrics`).
:class:`~repro.service.metrics.ServiceStats` reports per-query
p50/p99 latency on the virtual clock, sustained queries/sec over the
traffic span, shared-sense and cache-served counts (the dedup ratio
counts both, so it stays truthful when the cache absorbs work before
the engine sees it), deadline conformance, and the bottleneck
pipeline resource from the event simulation.

All windows' chunk jobs enter *one* event simulation with
``ready_at`` equal to their window close, so cross-window contention
(a bursty window queuing behind the previous one's stragglers) is
exact rather than approximated window by window.
"""

from repro.service.admission import (
    AdmissionQueue,
    AdmissionWindow,
    Submission,
)
from repro.service.clients import (
    BitmapIndexClient,
    ClientTraffic,
    ClosedLoopController,
    KCliqueClient,
    SegmentationClient,
    TrafficClient,
    TrafficItem,
    generate_traffic,
    populate_all,
    run_closed_loop,
)
from repro.service.clock import (
    ArrivalProcess,
    BurstArrivals,
    PoissonArrivals,
    UniformArrivals,
    VirtualClock,
)
from repro.service.health import (
    DEGRADED,
    HEALTH_STATES,
    HEALTHY,
    QUARANTINED,
    ChipHealthTracker,
    HealthConfig,
)
from repro.service.metrics import LatencySummary, ServiceStats
from repro.service.scheduler import (
    POLICIES,
    QueryInfo,
    estimated_chip_work_us,
    schedule_window,
)
from repro.service.service import (
    QueryService,
    ServedQuery,
    ServiceReport,
)

__all__ = [
    "DEGRADED",
    "HEALTHY",
    "HEALTH_STATES",
    "POLICIES",
    "QUARANTINED",
    "AdmissionQueue",
    "AdmissionWindow",
    "ArrivalProcess",
    "BitmapIndexClient",
    "BurstArrivals",
    "ChipHealthTracker",
    "ClientTraffic",
    "ClosedLoopController",
    "HealthConfig",
    "KCliqueClient",
    "LatencySummary",
    "PoissonArrivals",
    "QueryInfo",
    "QueryService",
    "SegmentationClient",
    "ServedQuery",
    "ServiceReport",
    "ServiceStats",
    "Submission",
    "TrafficClient",
    "TrafficItem",
    "UniformArrivals",
    "VirtualClock",
    "estimated_chip_work_us",
    "generate_traffic",
    "populate_all",
    "run_closed_loop",
    "schedule_window",
]
