"""Multi-query chip scheduler for one admission window.

Chunk placement is fixed by the FTL's striping (chunk ``c`` lives on
chip ``c mod n_chips``), so the scheduler cannot move work between
chips -- what it controls is the *order* in which each chip's queue
drains and how the chips' emissions interleave on the shared
downstream resources (channel buses, external link).  Within one
ready time the event simulation serves FCFS ties in submission order,
so the emitted task order *is* the schedule.

The ``balanced`` policy reorders across queries to minimize window
makespan rather than any single query's latency:

1. **Share groups first** -- tasks with identical ``(chip, plan)``
   identity are bucketed together so a shared sense's subscribers
   drain immediately behind their primary (their results leave the
   chip as soon as the one real sense finishes, instead of waiting in
   program order).
2. **Longest sense first per chip** -- each chip's unique buckets are
   ordered by descending estimated sense latency (LPT): a long sense
   scheduled last would stick out of the window's tail, while
   scheduled first it overlaps every shorter sense and the transfers
   behind them.
3. **Longest-remaining-work interleave across chips** -- buckets are
   emitted by repeatedly picking the chip with the most estimated
   work left, keeping the per-chip queue depths balanced and the
   shared external link fed from the start of the window.

``fifo`` preserves submission order exactly -- the naive baseline the
benchmarks compare against.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.core.planner import Plan
from repro.ssd.query_engine import ChunkTask

#: Latency estimator: (task) -> estimated sense microseconds.  The
#: service wires this to ``MwsExecutor.estimate_latency_us`` so the
#: schedule is chosen from the physically derived tMWS model without
#: executing anything.
LatencyEstimator = Callable[[ChunkTask], float]

POLICIES = ("fifo", "balanced")


def schedule_window(
    tasks: Sequence[ChunkTask],
    estimate: LatencyEstimator,
    *,
    policy: str = "balanced",
    share: bool = True,
) -> list[ChunkTask]:
    """Order one window's chunk tasks into the global emission order.

    ``share`` mirrors the engine's sense-sharing switch: with it on,
    duplicate tasks of a share group cost nothing, which changes the
    LPT weights and the cross-chip balance.
    """
    if policy not in POLICIES:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; choose from {POLICIES}"
        )
    if policy == "fifo":
        return list(tasks)

    # 1. Bucket per chip by plan identity, preserving first-seen order.
    per_chip: dict[int, dict[Plan, list[ChunkTask]]] = {}
    for task in tasks:
        per_chip.setdefault(task.chip, {}).setdefault(
            task.plan, []
        ).append(task)

    # 2. LPT-order each chip's unique buckets.  A bucket's cost is one
    #    sense when sharing (subscribers are free) and one per task
    #    otherwise.
    chip_queues: dict[int, list[tuple[float, list[ChunkTask]]]] = {}
    chip_work: dict[int, float] = {}
    for chip, buckets in per_chip.items():
        weighted = []
        for plan, group in buckets.items():
            unit = estimate(group[0])
            cost = unit if share else unit * len(group)
            weighted.append((cost, group))
        weighted.sort(key=lambda item: -item[0])
        chip_queues[chip] = weighted
        chip_work[chip] = sum(cost for cost, _ in weighted)

    # 3. Emit buckets from the chip with the most remaining work.
    ordered: list[ChunkTask] = []
    while chip_queues:
        chip = max(chip_queues, key=lambda c: (chip_work[c], -c))
        cost, group = chip_queues[chip].pop(0)
        chip_work[chip] -= cost
        ordered.extend(group)
        if not chip_queues[chip]:
            del chip_queues[chip]
    return ordered


def estimated_chip_work_us(
    tasks: Iterable[ChunkTask],
    estimate: LatencyEstimator,
    *,
    share: bool = True,
) -> dict[int, float]:
    """Estimated sense microseconds per chip for one window -- the
    scheduler's own view of the load balance, exposed for metrics and
    tests."""
    seen: set[tuple[int, Plan]] = set()
    work: dict[int, float] = {}
    for task in tasks:
        if share:
            if task.share_key in seen:
                continue
            seen.add(task.share_key)
        work[task.chip] = work.get(task.chip, 0.0) + estimate(task)
    return work
