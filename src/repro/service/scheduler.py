"""Multi-query chip scheduler for one admission window.

Chunk placement is fixed by the FTL's striping (chunk ``c`` lives on
chip ``c mod n_chips``), so the scheduler cannot move work between
chips -- what it controls is the *order* in which each chip's queue
drains and how the chips' emissions interleave on the shared
downstream resources (channel buses, external link).  Within one
ready time the event simulation serves FCFS ties in submission order,
so the emitted task order *is* the schedule.

The ``balanced`` policy reorders across queries to minimize window
makespan rather than any single query's latency:

1. **Share groups first** -- tasks with identical ``(chip, plan)``
   identity are bucketed together so a shared sense's subscribers
   drain immediately behind their primary (their results leave the
   chip as soon as the one real sense finishes, instead of waiting in
   program order).
2. **Longest sense first per chip** -- each chip's unique buckets are
   ordered by descending estimated sense latency (LPT): a long sense
   scheduled last would stick out of the window's tail, while
   scheduled first it overlaps every shorter sense and the transfers
   behind them.
3. **Longest-remaining-work interleave across chips** -- buckets are
   emitted by repeatedly picking the chip with the most estimated
   work left, keeping the per-chip queue depths balanced and the
   shared external link fed from the start of the window.

The ``edf`` policy adds service-level objectives on top of the same
share-group bucketing: queries may carry a deadline and a priority
(:class:`QueryInfo`), and tenants may carry weights.  Per chip,
share-group buckets whose subscribers hold a deadline are emitted
earliest-deadline-first (classic EDF -- optimal for meeting feasible
deadline sets on one serial resource), while the deadline-free bulk
drains in weighted-fair order across tenants (start-time-fair virtual
finish times), so a tenant's long scans can no longer monopolize a
chip just by arriving first: point queries with deadlines jump the
queue, and other tenants' deadline-free work interleaves
proportionally to weight instead of FIFO.  Across chips, emission
follows the most urgent head bucket (then longest remaining work), so
the shared external link serves deadline traffic first too.

``fifo`` preserves submission order exactly -- the naive baseline the
benchmarks compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, NamedTuple, Sequence

from repro.core.planner import Plan
from repro.ssd.query_engine import ChunkTask

#: Latency estimator: (task) -> estimated sense microseconds.  The
#: service wires this to ``MwsExecutor.estimate_latency_us`` so the
#: schedule is chosen from the physically derived tMWS model without
#: executing anything.
LatencyEstimator = Callable[[ChunkTask], float]

POLICIES = ("fifo", "balanced", "edf")

_NO_DEADLINE = float("inf")


@dataclass(frozen=True)
class QueryInfo:
    """Scheduler-relevant attributes of one query in a window.

    The ``edf`` policy consumes a ``query id -> QueryInfo`` mapping:
    ``deadline_us`` is the absolute virtual-clock deadline (``None``
    for best-effort traffic), ``priority`` breaks ties among equal
    deadlines (higher first), and ``weight`` is the query's tenant
    share for the weighted-fair drain of deadline-free work.
    """

    client: str = "client"
    priority: int = 0
    deadline_us: float | None = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")


def job_directives(
    info: QueryInfo,
) -> tuple[float, float | None, bool]:
    """Arbitration directives ``(priority, deadline_s, preemptible)``
    for one query's pipeline jobs.

    This is where the scheduler's intent reaches the event
    simulator's channel/die arbiter
    (:func:`repro.ssd.events.simulate_stages` with an
    :class:`~repro.ssd.events.ArbitrationConfig`): a query that
    stated a deadline becomes an *urgent, non-preemptible* job stream
    -- its deadline (converted to the simulator's seconds) ranks it
    against other deadline traffic EDF-style at every contended
    resource, and once its sense occupies a die nothing may suspend
    it (suspending the latency-critical work to admit bulk would be
    backwards).  Deadline-free traffic stays *preemptible bulk*: an
    arriving urgent job may suspend its in-flight sense, bounded by
    the arbiter's ``max_suspends`` starvation cap.  Priority carries
    over as the tie-breaker in both classes.  Under the legacy FCFS
    sweep (no arbitration config) all three directives are ignored,
    so emitting them is always safe.
    """
    if info.deadline_us is not None:
        return (float(info.priority), info.deadline_us * 1e-6, False)
    return (float(info.priority), None, True)


def schedule_window(
    tasks: Sequence[ChunkTask],
    estimate: LatencyEstimator,
    *,
    policy: str = "balanced",
    share: bool = True,
    info: Mapping[int, QueryInfo] | None = None,
    degraded: Iterable[int] = (),
    offline: Iterable[int] = (),
    degraded_slowdown: float = 3.0,
    gc_busy: Mapping[int, float] | None = None,
    reconstruct: bool = False,
) -> list[ChunkTask]:
    """Order one window's chunk tasks into the global emission order.

    ``share`` mirrors the engine's sense-sharing switch: with it on,
    duplicate tasks of a share group cost nothing, which changes the
    LPT weights and the cross-chip balance.  ``info`` carries the
    per-query deadlines/priorities/weights the ``edf`` policy orders
    by; the other policies ignore it.

    ``degraded`` and ``offline`` are the health tracker's routing
    directives (see :mod:`repro.service.health`).  Striping fixes
    chunk placement, so the scheduler cannot move a sick chip's work
    elsewhere -- what it does is *price and park*: a degraded chip's
    estimates are scaled by ``degraded_slowdown`` (the V_TH path is
    slower, so the LPT balance and EDF urgency must see the real
    cost), and a quarantined chip's tasks are parked at the emission
    tail in submission order, where the engine fails them fast
    without ever occupying schedule positions ahead of live work.
    With ``reconstruct`` on (parity-striped SSD) an offline chip's
    tasks are *not* parked -- the engine will serve them via parity
    reconstruction, which costs real survivor senses, so they are
    priced like degraded work (scaled by ``degraded_slowdown``) and
    scheduled inline with the live traffic instead of being written
    off at the tail.

    ``gc_busy`` is the maintenance plane's pricing input: per-chip
    background microseconds (GC copyback/erase, probation drain)
    still pending inside the event simulation.  A die occupied by
    background work drains its queue later in real time even though
    the background jobs yield to every foreground sense, so the
    cross-chip interleave counts that pending busy time as extra
    remaining work -- chips burdened by GC emit their buckets earlier
    and the window's tail stays off the collecting die.
    """
    if policy not in POLICIES:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; choose from {POLICIES}"
        )
    degraded_chips = frozenset(degraded)
    offline_chips = frozenset(offline)
    if reconstruct and offline_chips:
        # Reconstruction serves an offline chip's tasks at real
        # survivor-sense cost: price them as degraded work and keep
        # them in the live schedule instead of parking.
        degraded_chips |= offline_chips
        offline_chips = frozenset()
    if degraded_chips:
        base = estimate

        def estimate(task: ChunkTask, _base: LatencyEstimator = base) -> float:
            cost = _base(task)
            if task.chip in degraded_chips:
                cost *= degraded_slowdown
            return cost

    parked: list[ChunkTask] = []
    if offline_chips:
        live = [t for t in tasks if t.chip not in offline_chips]
        parked = [t for t in tasks if t.chip in offline_chips]
        tasks = live
    if policy == "fifo":
        return list(tasks) + parked
    if policy == "edf":
        return (
            _edf_schedule(tasks, estimate, info or {}, share, gc_busy)
            + parked
        )

    # 1./2. Bucket per chip by plan identity and LPT-order each chip's
    #    unique buckets by their estimated cost.
    chip_queues: dict[int, list[tuple[float, list[ChunkTask]]]] = {}
    chip_work: dict[int, float] = {}
    for chip, entries in _chip_share_groups(tasks, estimate, share).items():
        weighted = [(cost, group) for group, cost, _ in entries]
        weighted.sort(key=lambda item: -item[0])
        chip_queues[chip] = weighted
        chip_work[chip] = sum(cost for cost, _ in weighted)
    if gc_busy:
        for chip, extra in gc_busy.items():
            if chip in chip_work:
                chip_work[chip] += extra

    # 3. Emit buckets from the chip with the most remaining work.
    ordered: list[ChunkTask] = []
    while chip_queues:
        chip = max(chip_queues, key=lambda c: (chip_work[c], -c))
        cost, group = chip_queues[chip].pop(0)
        chip_work[chip] -= cost
        ordered.extend(group)
        if not chip_queues[chip]:
            del chip_queues[chip]
    return ordered + parked


def _chip_share_groups(
    tasks: Sequence[ChunkTask],
    estimate: LatencyEstimator,
    share: bool,
) -> dict[int, list[tuple[list[ChunkTask], float, int]]]:
    """Per chip: share-group buckets ``(group, cost, arrival)`` in
    first-seen order -- the step every non-FIFO policy starts from.
    A bucket's cost is one sense when sharing (subscribers are free)
    and one per task otherwise; ``arrival`` is the bucket's first
    position in the submitted order."""
    per_chip: dict[int, dict[Plan, list[ChunkTask]]] = {}
    arrival: dict[tuple[int, Plan], int] = {}
    for position, task in enumerate(tasks):
        per_chip.setdefault(task.chip, {}).setdefault(
            task.plan, []
        ).append(task)
        arrival.setdefault((task.chip, task.plan), position)
    grouped: dict[int, list[tuple[list[ChunkTask], float, int]]] = {}
    for chip, buckets in per_chip.items():
        entries = []
        for plan, group in buckets.items():
            unit = estimate(group[0])
            cost = unit if share else unit * len(group)
            entries.append((group, cost, arrival[(chip, plan)]))
        grouped[chip] = entries
    return grouped


class _Bucket(NamedTuple):
    """One share group under the ``edf`` policy: its urgency
    (earliest subscriber deadline, negated max priority, arrival
    position), its estimated cost, and the tenant it is billed to
    (the heaviest-weight subscriber)."""

    deadline: float
    neg_priority: int
    arrival: int
    cost: float
    client: str
    weight: float
    group: list[ChunkTask]

    def urgency_key(self) -> tuple[float, int, int]:
        return (self.deadline, self.neg_priority, self.arrival)


def _edf_schedule(
    tasks: Sequence[ChunkTask],
    estimate: LatencyEstimator,
    info: Mapping[int, QueryInfo],
    share: bool,
    gc_busy: Mapping[int, float] | None = None,
) -> list[ChunkTask]:
    """Earliest-deadline-first within weighted-fair tenant shares.

    Per chip: share-group buckets are formed exactly as in
    ``balanced`` (a shared sense's subscribers drain together), each
    bucket inheriting the most urgent deadline and highest priority
    among its subscribers and the tenant of its heaviest-weight
    subscriber.  Emission interleaves two concerns:

    * buckets holding a real deadline are served in (deadline,
      -priority, arrival) order -- EDF, which on a serial resource
      meets every deadline any order could meet;
    * deadline-free buckets are served start-time-fair across
      tenants: each tenant accrues virtual time ``cost / weight`` per
      emitted bucket and the smallest virtual finish time goes next,
      so a scan tenant's long queue no longer starves other tenants'
      work -- it gets its weighted share and no more.

    A deadline bucket always goes before a deadline-free one (missing
    a stated SLO to polish fairness of best-effort traffic would be
    backwards).  Across chips, the chip whose head bucket is most
    urgent emits next (ties: longest remaining estimated work, as in
    ``balanced``), ordering the shared downstream link the same way.
    """
    default = QueryInfo()
    # 1. Bucket per chip by plan identity (shared with ``balanced``),
    #    then lift each share group into its EDF attributes.
    # 2. Per chip: EDF order for deadline buckets, weighted-fair
    #    virtual time across tenants for the rest.
    chip_queues: dict[int, list[_Bucket]] = {}
    chip_work: dict[int, float] = {}
    for chip, groups in _chip_share_groups(tasks, estimate, share).items():
        entries: list[_Bucket] = []
        for group, cost, first_seen in groups:
            metas = [info.get(task.query, default) for task in group]
            deadline = min(
                (
                    m.deadline_us
                    for m in metas
                    if m.deadline_us is not None
                ),
                default=_NO_DEADLINE,
            )
            priority = max(m.priority for m in metas)
            owner = max(metas, key=lambda m: m.weight)
            entries.append(
                _Bucket(
                    deadline=deadline,
                    neg_priority=-priority,
                    arrival=first_seen,
                    cost=cost,
                    client=owner.client,
                    weight=owner.weight,
                    group=group,
                )
            )
        entries.sort(key=_Bucket.urgency_key)
        urgent = [e for e in entries if e.deadline != _NO_DEADLINE]
        relaxed = [e for e in entries if e.deadline == _NO_DEADLINE]
        # Weighted-fair interleave of the deadline-free buckets: each
        # tenant's queue keeps its (priority, arrival) order; the
        # tenant with the smallest virtual finish time emits next.
        tenant_queues: dict[str, list[_Bucket]] = {}
        for entry in relaxed:
            tenant_queues.setdefault(entry.client, []).append(entry)
        virtual: dict[str, float] = {t: 0.0 for t in tenant_queues}
        fair: list[_Bucket] = []
        while tenant_queues:
            tenant = min(
                tenant_queues,
                key=lambda t: (
                    virtual[t]
                    + tenant_queues[t][0].cost / tenant_queues[t][0].weight,
                    t,
                ),
            )
            entry = tenant_queues[tenant].pop(0)
            virtual[tenant] += entry.cost / entry.weight
            fair.append(entry)
            if not tenant_queues[tenant]:
                del tenant_queues[tenant]
        queue = urgent + fair
        chip_queues[chip] = queue
        chip_work[chip] = sum(e.cost for e in queue)
    if gc_busy:
        for chip, extra in gc_busy.items():
            if chip in chip_work:
                chip_work[chip] += extra

    # 3. Interleave chips by most urgent head, then most remaining
    #    work (the shared link serves deadline traffic first).
    ordered: list[ChunkTask] = []
    while chip_queues:
        chip = min(
            chip_queues,
            key=lambda c: (
                chip_queues[c][0].deadline,
                chip_queues[c][0].neg_priority,
                -chip_work[c],
                c,
            ),
        )
        bucket = chip_queues[chip].pop(0)
        chip_work[chip] -= bucket.cost
        ordered.extend(bucket.group)
        if not chip_queues[chip]:
            del chip_queues[chip]
    return ordered


def estimated_chip_work_us(
    tasks: Iterable[ChunkTask],
    estimate: LatencyEstimator,
    *,
    share: bool = True,
) -> dict[int, float]:
    """Estimated sense microseconds per chip for one window -- the
    scheduler's own view of the load balance, exposed for metrics and
    tests."""
    seen: set[tuple[int, Plan]] = set()
    work: dict[int, float] = {}
    for task in tasks:
        if share:
            if task.share_key in seen:
                continue
            seen.add(task.share_key)
        work[task.chip] = work.get(task.chip, 0.0) + estimate(task)
    return work
