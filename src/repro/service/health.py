"""Per-chip health tracking and quarantine for the query service.

The service observes every window's per-chip operation/error counts
(an *operation* is one real recovered execution attempt on the chip;
an *error* is a faulted attempt or a surfaced failure) and folds each
window's error rate into a per-chip EWMA.  A circuit-breaker state
machine rides on the EWMA:

``healthy``
    Full-speed packed-plane service.  EWMA at or above
    ``degrade_threshold`` moves the chip to ``degraded``; at or above
    ``quarantine_threshold`` it trips straight to ``quarantined``.

``degraded``
    The chip keeps serving, but the engine re-executes its senses on
    the V_TH read-retry path (``force_vth`` -- correct but slower,
    and immune to transient sense faults) and the scheduler scales
    its latency estimates by the configured slowdown.  EWMA below
    ``degrade_threshold`` heals the chip back to ``healthy``; at or
    above ``quarantine_threshold`` it trips to ``quarantined``.

``quarantined``
    The breaker is open: the scheduler parks the chip's tasks and the
    engine fails them fast with
    :class:`~repro.flash.errors.ChipUnavailableError` -- no traffic
    reaches the chip.  With no observations the EWMA decays by
    ``(1 - ewma_alpha)`` per window, and after ``probation_windows``
    windows the breaker half-opens: the chip re-enters service in
    ``degraded`` mode (the safe V_TH path), from which it must earn
    its way back to ``healthy`` through the thresholds above.

Every transition in or out of ``quarantined`` is a *placement event*:
the service bumps the chip's
:attr:`~repro.core.planner.OperandDirectory.generation`, so every
bound plan and cached result stamped against the old placement world
is rebound before the chip serves (or stops serving) traffic -- the
same invalidation contract register/unregister already follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"

#: The breaker's states in escalation order.
HEALTH_STATES = (HEALTHY, DEGRADED, QUARANTINED)


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds of the per-chip circuit breaker."""

    #: Smoothing factor of the per-window error-rate EWMA (weight of
    #: the newest window).
    ewma_alpha: float = 0.35
    #: EWMA at or above this marks the chip ``degraded`` (V_TH path,
    #: scaled estimates).
    degrade_threshold: float = 0.1
    #: EWMA at or above this trips the breaker open (``quarantined``).
    quarantine_threshold: float = 0.5
    #: Quarantine windows before the breaker half-opens back into
    #: ``degraded``.
    probation_windows: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 < self.degrade_threshold <= self.quarantine_threshold:
            raise ValueError(
                "thresholds must satisfy 0 < degrade <= quarantine"
            )
        if self.quarantine_threshold > 1.0:
            raise ValueError("quarantine_threshold must be <= 1")
        if self.probation_windows < 1:
            raise ValueError("probation_windows must be >= 1")


class ChipHealthTracker:
    """EWMA error tracking + breaker state for every chip of one SSD."""

    def __init__(
        self, n_chips: int, config: HealthConfig | None = None
    ) -> None:
        if n_chips < 1:
            raise ValueError("n_chips must be >= 1")
        self.config = config or HealthConfig()
        self._states = [HEALTHY] * n_chips
        self._ewma = [0.0] * n_chips
        self._quarantine_left = [0] * n_chips
        #: Chips whose quarantine is permanent (fail-stopped hardware,
        #: e.g. :meth:`SmallSsd.kill_chip`): the breaker never
        #: half-opens for them -- there is no hardware left to probate.
        self._permanent: set[int] = set()
        #: Times any chip's breaker tripped open over this tracker's
        #: lifetime.
        self.quarantines = 0

    @property
    def n_chips(self) -> int:
        return len(self._states)

    def state(self, chip: int) -> str:
        return self._states[chip]

    def error_rate(self, chip: int) -> float:
        """Current error-rate EWMA of one chip."""
        return self._ewma[chip]

    @property
    def degraded(self) -> frozenset[int]:
        """Chips serving on the safe V_TH path."""
        return frozenset(
            chip
            for chip, state in enumerate(self._states)
            if state == DEGRADED
        )

    @property
    def offline(self) -> frozenset[int]:
        """Chips whose breaker is open (no traffic)."""
        return frozenset(
            chip
            for chip, state in enumerate(self._states)
            if state == QUARANTINED
        )

    def survivors(self, exclude: int | None = None) -> list[int]:
        """Chips still accepting traffic (not quarantined), minus
        ``exclude`` -- the maintenance plane's candidate destinations
        when draining a freshly quarantined chip's live vectors."""
        return [
            chip
            for chip, state in enumerate(self._states)
            if state != QUARANTINED and chip != exclude
        ]

    def is_permanent(self, chip: int) -> bool:
        """Whether a chip's quarantine is permanent (dead hardware)."""
        return chip in self._permanent

    def force_quarantine(self, chip: int, *, permanent: bool = False) -> bool:
        """Trip one chip's breaker open immediately, bypassing the
        EWMA -- the service calls this when it detects a fail-stopped
        chip (``chip.offline``), where waiting for error statistics
        would burn windows of failed traffic.  With ``permanent`` the
        breaker never half-opens: the chip stays quarantined until the
        tracker is rebuilt (dead hardware does not heal).  Returns
        whether a transition happened (the caller's placement-event
        bump applies exactly then)."""
        if not 0 <= chip < len(self._states):
            raise ValueError(f"chip {chip} outside 0..{len(self._states) - 1}")
        if permanent:
            self._permanent.add(chip)
        if self._states[chip] == QUARANTINED:
            return False
        self._states[chip] = QUARANTINED
        self._ewma[chip] = 1.0
        self._quarantine_left[chip] = self.config.probation_windows
        self.quarantines += 1
        return True

    def observe_window(
        self, observations: Mapping[int, tuple[int, int]]
    ) -> list[tuple[int, str, str]]:
        """Fold one window's ``chip -> (operations, errors)`` counts
        into the EWMAs and advance the breaker state machine.

        Every chip advances every window: observed chips fold their
        window error rate in, unobserved (idle or quarantined) chips
        decay toward health.  Returns the transitions performed as
        ``(chip, old_state, new_state)`` -- the service treats any
        transition touching ``quarantined`` as a placement event.
        """
        cfg = self.config
        transitions: list[tuple[int, str, str]] = []
        for chip in range(len(self._states)):
            old = self._states[chip]
            ops, errors = observations.get(chip, (0, 0))
            if ops > 0:
                rate = min(1.0, errors / ops)
                self._ewma[chip] = (
                    cfg.ewma_alpha * rate
                    + (1.0 - cfg.ewma_alpha) * self._ewma[chip]
                )
            else:
                self._ewma[chip] *= 1.0 - cfg.ewma_alpha
            new = old
            if old == QUARANTINED:
                if chip not in self._permanent:
                    self._quarantine_left[chip] -= 1
                    if self._quarantine_left[chip] <= 0:
                        new = DEGRADED  # half-open: V_TH path first
            elif self._ewma[chip] >= cfg.quarantine_threshold:
                new = QUARANTINED
                self._quarantine_left[chip] = cfg.probation_windows
                self.quarantines += 1
            elif self._ewma[chip] >= cfg.degrade_threshold:
                new = DEGRADED
            else:
                new = HEALTHY
            if new != old:
                self._states[chip] = new
                transitions.append((chip, old, new))
        return transitions
