"""Simulated clients: workload query streams + arrival processes.

Each client wraps one of the paper's workloads
(:mod:`repro.workloads`) as a traffic source: ``populate`` writes the
workload's bit vectors onto the SSD (keeping a host-side copy as the
NumPy oracle), and ``expressions`` draws a stream of query shapes from
the workload's own generator.  :func:`generate_traffic` stamps those
streams with arrival times from per-client arrival processes and
merges them into one submission trace for
:meth:`~repro.service.service.QueryService.submit_traffic`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.expressions import Expression
from repro.service.clock import ArrivalProcess
from repro.ssd.controller import SmallSsd
from repro.workloads.bitmap_index import bmi_point_queries
from repro.workloads.image_segmentation import (
    generate_segmentation_masks,
    ims_segment_queries,
)
from repro.workloads.kclique import kcs_star_queries


class TrafficClient:
    """One simulated tenant: owns vectors on the SSD, emits queries."""

    name: str

    def populate(self, ssd: SmallSsd, rng: np.random.Generator) -> None:
        """Write this client's vectors; fills ``self.env`` with the
        host-side oracle copies."""
        raise NotImplementedError

    def expressions(
        self, rng: np.random.Generator, n_queries: int
    ) -> list[Expression]:
        raise NotImplementedError


@dataclass
class BitmapIndexClient(TrafficClient):
    """Analytical dashboard issuing day-window AND point queries."""

    n_bits: int
    name: str = "bmi"
    n_days: int = 8
    min_days: int = 2
    shape_pool: int = 4
    activity: float = 0.8
    env: dict[str, np.ndarray] = field(default_factory=dict)

    def _day_names(self) -> list[str]:
        return [f"{self.name}/day{i}" for i in range(self.n_days)]

    def populate(self, ssd: SmallSsd, rng: np.random.Generator) -> None:
        core = max(1, self.n_bits // 50)
        for day in self._day_names():
            bits = (rng.random(self.n_bits) < self.activity).astype(
                np.uint8
            )
            bits[:core] = 1
            self.env[day] = bits
            ssd.write_vector(day, bits, group=f"{self.name}/days")

    def expressions(self, rng, n_queries):
        return bmi_point_queries(
            self._day_names(),
            rng,
            n_queries,
            min_days=self.min_days,
            shape_pool=self.shape_pool,
        )


@dataclass
class KCliqueClient(TrafficClient):
    """Graph-mining tenant scanning k-clique stars.

    Member adjacency rows co-locate in one string group (single-sense
    AND); clique-membership vectors live in their own blocks so the
    trailing OR rides the same sense via combined intra+inter MWS.
    """

    n_bits: int
    name: str = "kcs"
    n_members: int = 6
    n_cliques: int = 3
    k: int = 3
    edge_prob: float = 0.3
    env: dict[str, np.ndarray] = field(default_factory=dict)

    def _member_names(self) -> list[str]:
        return [f"{self.name}/adj{i}" for i in range(self.n_members)]

    def _clique_names(self) -> list[str]:
        return [f"{self.name}/clique{j}" for j in range(self.n_cliques)]

    def populate(self, ssd: SmallSsd, rng: np.random.Generator) -> None:
        for member in self._member_names():
            bits = (rng.random(self.n_bits) < self.edge_prob).astype(
                np.uint8
            )
            self.env[member] = bits
            ssd.write_vector(member, bits, group=f"{self.name}/adj")
        for clique in self._clique_names():
            members = np.zeros(self.n_bits, dtype=np.uint8)
            members[
                rng.choice(self.n_bits, size=self.k, replace=False)
            ] = 1
            self.env[clique] = members
            ssd.write_vector(clique, members)  # own block: OR operand

    def expressions(self, rng, n_queries):
        return kcs_star_queries(
            self._member_names(),
            self._clique_names(),
            rng,
            n_queries,
            k=self.k,
        )


@dataclass
class SegmentationClient(TrafficClient):
    """Vision tenant segmenting color planes: Y . U . V per color.
    Only a handful of distinct shapes -- a repeat-heavy stream."""

    n_bits: int
    name: str = "ims"
    n_colors: int = 2
    env: dict[str, np.ndarray] = field(default_factory=dict)

    def _planes(self) -> list[tuple[str, str, str]]:
        return [
            tuple(f"{self.name}/c{c}/{p}" for p in "yuv")
            for c in range(self.n_colors)
        ]

    def populate(self, ssd: SmallSsd, rng: np.random.Generator) -> None:
        for c, plane in enumerate(self._planes()):
            y, u, v = generate_segmentation_masks(self.n_bits, rng)
            for name, bits in zip(plane, (y, u, v)):
                self.env[name] = bits
                ssd.write_vector(name, bits, group=f"{self.name}/c{c}")

    def expressions(self, rng, n_queries):
        return ims_segment_queries(self._planes(), rng, n_queries)


@dataclass(frozen=True)
class ClientTraffic:
    """One client's share of a traffic mix."""

    client: TrafficClient
    process: ArrivalProcess
    n_queries: int

    def __post_init__(self) -> None:
        if self.n_queries < 1:
            raise ValueError("n_queries must be >= 1")


def populate_all(
    ssd: SmallSsd,
    traffic: list[ClientTraffic],
    rng: np.random.Generator,
) -> dict[str, np.ndarray]:
    """Write every client's vectors; returns the merged NumPy oracle
    environment (operand name -> bit vector)."""
    env: dict[str, np.ndarray] = {}
    for item in traffic:
        item.client.populate(ssd, rng)
        env.update(item.client.env)
    return env


def generate_traffic(
    traffic: list[ClientTraffic],
    rng: np.random.Generator,
    *,
    start_us: float = 0.0,
) -> list[tuple[float, str, Expression]]:
    """Stamp every client's query stream with arrival times and merge
    into one time-ordered ``(at_us, client, expr)`` trace."""
    merged: list[tuple[float, str, Expression]] = []
    for item in traffic:
        times = item.process.arrival_times(
            item.n_queries, rng, start_us=start_us
        )
        exprs = item.client.expressions(rng, item.n_queries)
        merged.extend(
            (t, item.client.name, e) for t, e in zip(times, exprs)
        )
    merged.sort(key=lambda entry: entry[0])
    return merged
