"""Simulated clients: workload query streams + arrival processes.

Each client wraps one of the paper's workloads
(:mod:`repro.workloads`) as a traffic source: ``populate`` writes the
workload's bit vectors onto the SSD (keeping a host-side copy as the
NumPy oracle), and ``expressions`` draws a stream of query shapes from
the workload's own generator.  :func:`generate_traffic` stamps those
streams with arrival times from per-client arrival processes -- plus
the tenant's ``priority`` and relative ``deadline_us`` converted to
absolute deadlines -- and merges them into one submission trace for
:meth:`~repro.service.service.QueryService.submit_traffic`.

**Closed-loop traffic.**  The arrival processes above are *open-loop*:
they keep emitting at their configured rate no matter how the service
is doing, which is the right model for benchmark gates but not for
real clients behind a rate limiter.  :class:`ClosedLoopController` +
:func:`run_closed_loop` model backpressure: traffic is generated in
rounds, each round's rate set by an AIMD controller reacting to the
*observed* p99 of the previous round (multiplicative backoff above the
latency target, additive probing below it -- TCP's stability recipe).
The loop is deterministic for a fixed rng, so tests can pin the
trajectory; and because the engine's result cache outlives a service
run, later rounds of a shape-repeating client get faster as the cache
warms -- the controller observes that and raises the sustainable rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, NamedTuple

import numpy as np

from repro.core.expressions import Expression
from repro.service.clock import ArrivalProcess, PoissonArrivals
from repro.ssd.controller import SmallSsd
from repro.workloads.bitmap_index import bmi_point_queries
from repro.workloads.image_segmentation import (
    generate_segmentation_masks,
    ims_segment_queries,
)
from repro.workloads.kclique import kcs_star_queries


class TrafficClient:
    """One simulated tenant: owns vectors on the SSD, emits queries."""

    name: str

    def populate(self, ssd: SmallSsd, rng: np.random.Generator) -> None:
        """Write this client's vectors; fills ``self.env`` with the
        host-side oracle copies."""
        raise NotImplementedError

    def expressions(
        self, rng: np.random.Generator, n_queries: int
    ) -> list[Expression]:
        raise NotImplementedError


@dataclass
class BitmapIndexClient(TrafficClient):
    """Analytical dashboard issuing day-window AND point queries."""

    n_bits: int
    name: str = "bmi"
    n_days: int = 8
    min_days: int = 2
    shape_pool: int = 4
    activity: float = 0.8
    env: dict[str, np.ndarray] = field(default_factory=dict)

    def _day_names(self) -> list[str]:
        return [f"{self.name}/day{i}" for i in range(self.n_days)]

    def populate(self, ssd: SmallSsd, rng: np.random.Generator) -> None:
        core = max(1, self.n_bits // 50)
        for day in self._day_names():
            bits = (rng.random(self.n_bits) < self.activity).astype(
                np.uint8
            )
            bits[:core] = 1
            self.env[day] = bits
            ssd.write_vector(day, bits, group=f"{self.name}/days")

    def expressions(self, rng, n_queries):
        return bmi_point_queries(
            self._day_names(),
            rng,
            n_queries,
            min_days=self.min_days,
            shape_pool=self.shape_pool,
        )


@dataclass
class KCliqueClient(TrafficClient):
    """Graph-mining tenant scanning k-clique stars.

    Member adjacency rows co-locate in one string group (single-sense
    AND); clique-membership vectors live in their own blocks so the
    trailing OR rides the same sense via combined intra+inter MWS.
    """

    n_bits: int
    name: str = "kcs"
    n_members: int = 6
    n_cliques: int = 3
    k: int = 3
    edge_prob: float = 0.3
    env: dict[str, np.ndarray] = field(default_factory=dict)

    def _member_names(self) -> list[str]:
        return [f"{self.name}/adj{i}" for i in range(self.n_members)]

    def _clique_names(self) -> list[str]:
        return [f"{self.name}/clique{j}" for j in range(self.n_cliques)]

    def populate(self, ssd: SmallSsd, rng: np.random.Generator) -> None:
        for member in self._member_names():
            bits = (rng.random(self.n_bits) < self.edge_prob).astype(
                np.uint8
            )
            self.env[member] = bits
            ssd.write_vector(member, bits, group=f"{self.name}/adj")
        for clique in self._clique_names():
            members = np.zeros(self.n_bits, dtype=np.uint8)
            members[
                rng.choice(self.n_bits, size=self.k, replace=False)
            ] = 1
            self.env[clique] = members
            ssd.write_vector(clique, members)  # own block: OR operand

    def expressions(self, rng, n_queries):
        return kcs_star_queries(
            self._member_names(),
            self._clique_names(),
            rng,
            n_queries,
            k=self.k,
        )


@dataclass
class SegmentationClient(TrafficClient):
    """Vision tenant segmenting color planes: Y . U . V per color.
    Only a handful of distinct shapes -- a repeat-heavy stream."""

    n_bits: int
    name: str = "ims"
    n_colors: int = 2
    env: dict[str, np.ndarray] = field(default_factory=dict)

    def _planes(self) -> list[tuple[str, str, str]]:
        return [
            tuple(f"{self.name}/c{c}/{p}" for p in "yuv")
            for c in range(self.n_colors)
        ]

    def populate(self, ssd: SmallSsd, rng: np.random.Generator) -> None:
        for c, plane in enumerate(self._planes()):
            y, u, v = generate_segmentation_masks(self.n_bits, rng)
            for name, bits in zip(plane, (y, u, v)):
                self.env[name] = bits
                ssd.write_vector(name, bits, group=f"{self.name}/c{c}")

    def expressions(self, rng, n_queries):
        return ims_segment_queries(self._planes(), rng, n_queries)


@dataclass(frozen=True)
class ClientTraffic:
    """One client's share of a traffic mix.

    ``priority`` and ``deadline_us`` (a *relative* deadline from each
    query's arrival, converted to absolute by
    :func:`generate_traffic`) flow through to the service's ``edf``
    scheduling: interactive tenants set tight deadlines, scan tenants
    set none and are drained weighted-fair behind them.
    """

    client: TrafficClient
    process: ArrivalProcess
    n_queries: int
    priority: int = 0
    deadline_us: float | None = None

    def __post_init__(self) -> None:
        if self.n_queries < 1:
            raise ValueError("n_queries must be >= 1")
        if self.deadline_us is not None and self.deadline_us <= 0:
            raise ValueError("deadline_us must be positive (relative)")


def populate_all(
    ssd: SmallSsd,
    traffic: list[ClientTraffic],
    rng: np.random.Generator,
) -> dict[str, np.ndarray]:
    """Write every client's vectors; returns the merged NumPy oracle
    environment (operand name -> bit vector)."""
    env: dict[str, np.ndarray] = {}
    for item in traffic:
        item.client.populate(ssd, rng)
        env.update(item.client.env)
    return env


class TrafficItem(NamedTuple):
    """One submission of a generated trace.  The first three fields
    are the legacy ``(at_us, client, expr)`` triple (``item[:3]``
    still slices to it; three-name tuple unpacking of the whole item
    no longer works -- it now has five fields);
    :meth:`~repro.service.service.QueryService.submit_traffic`
    accepts both this and bare legacy triples."""

    at_us: float
    client: str
    expr: Expression
    priority: int = 0
    deadline_us: float | None = None


def generate_traffic(
    traffic: list[ClientTraffic],
    rng: np.random.Generator,
    *,
    start_us: float = 0.0,
) -> list[TrafficItem]:
    """Stamp every client's query stream with arrival times (and the
    tenant's priority / absolute deadline) and merge into one
    time-ordered trace of :class:`TrafficItem`."""
    merged: list[TrafficItem] = []
    for item in traffic:
        times = item.process.arrival_times(
            item.n_queries, rng, start_us=start_us
        )
        exprs = item.client.expressions(rng, item.n_queries)
        merged.extend(
            TrafficItem(
                t,
                item.client.name,
                e,
                item.priority,
                None if item.deadline_us is None else t + item.deadline_us,
            )
            for t, e in zip(times, exprs)
        )
    merged.sort(key=lambda entry: entry.at_us)
    return merged


# ----------------------------------------------------------------------
# Closed-loop traffic
# ----------------------------------------------------------------------


@dataclass
class ClosedLoopController:
    """AIMD rate controller: the client-side half of backpressure.

    Observes the service's p99 each round and sets the next round's
    offered rate: **multiplicative** backoff while the tail exceeds
    ``target_p99_us`` (overload must drain fast -- every queued query
    makes the tail worse), **additive** probing while it is under (the
    sustainable rate is unknown and creeps up slowly).  This is TCP's
    AIMD shape, which converges to a stable oscillation around the
    knee of the latency/throughput curve instead of locking onto an
    arbitrary fixed rate.
    """

    target_p99_us: float
    rate_qps: float
    min_rate_qps: float = 50.0
    max_rate_qps: float = 1e7
    #: Additive increase per under-target round.
    probe_qps: float = 500.0
    #: Multiplicative decrease factor per over-target round.
    backoff: float = 0.5

    def __post_init__(self) -> None:
        if self.target_p99_us <= 0:
            raise ValueError("target_p99_us must be positive")
        if not 0.0 < self.backoff < 1.0:
            raise ValueError("backoff must be in (0, 1)")
        if not self.min_rate_qps <= self.rate_qps <= self.max_rate_qps:
            raise ValueError("rate_qps must lie within its bounds")

    def observe(self, p99_us: float) -> float:
        """Fold one round's observed p99 into the offered rate and
        return the new rate."""
        if p99_us > self.target_p99_us:
            self.rate_qps = max(
                self.min_rate_qps, self.rate_qps * self.backoff
            )
        else:
            self.rate_qps = min(
                self.max_rate_qps, self.rate_qps + self.probe_qps
            )
        return self.rate_qps


def run_closed_loop(
    ssd: SmallSsd,
    client: TrafficClient,
    controller: ClosedLoopController,
    rng: np.random.Generator,
    *,
    rounds: int = 5,
    queries_per_round: int = 16,
    make_service: Callable[[SmallSsd], "object"] | None = None,
    **service_kwargs,
) -> list[dict]:
    """Drive ``rounds`` of closed-loop traffic from one client.

    Each round opens a fresh service over ``ssd`` (``service_kwargs``
    forward to :meth:`SmallSsd.service`, or pass ``make_service``),
    offers ``queries_per_round`` Poisson arrivals at the controller's
    current rate, runs the window pipeline, and feeds the observed p99
    back into the controller.  Returns one dict per round
    (``offered_qps``, ``p99_us``, ``throughput_qps``,
    ``cache_hit_rate``, ``next_qps``) -- the trajectory a backpressure
    plot wants.  The SSD (and hence the engine's result cache, when
    enabled) persists across rounds, so a shape-repeating client
    observes the cache warming as rising sustainable rate.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if make_service is not None and service_kwargs:
        raise ValueError(
            "pass either make_service or service kwargs, not both: "
            f"{sorted(service_kwargs)} would be silently ignored"
        )
    trajectory: list[dict] = []
    for _ in range(rounds):
        offered = controller.rate_qps
        service = (
            make_service(ssd)
            if make_service is not None
            else ssd.service(**service_kwargs)
        )
        traffic = ClientTraffic(
            client, PoissonArrivals(rate_qps=offered), queries_per_round
        )
        service.submit_traffic(generate_traffic([traffic], rng))
        report = service.run()
        p99 = report.stats.latency.p99_us
        trajectory.append(
            {
                "offered_qps": offered,
                "p99_us": p99,
                "throughput_qps": report.stats.throughput_qps,
                "cache_hit_rate": report.stats.cache_hit_rate,
                "next_qps": controller.observe(p99),
            }
        )
    return trajectory
