"""The query service: windows in, scheduled shared execution out."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.expressions import Expression
from repro.service.admission import AdmissionQueue, Submission
from repro.service.metrics import LatencySummary, ServiceStats
from repro.service.scheduler import POLICIES, schedule_window
from repro.ssd.controller import QueryResult, SmallSsd
from repro.ssd.events import StageJob, simulate_stages
from repro.ssd.query_engine import ChunkTask


@dataclass(frozen=True)
class ServedQuery:
    """One query's journey through the service."""

    query_id: int
    client: str
    expr: Expression
    submitted_us: float
    #: When the query's admission window closed (execution eligible).
    admitted_us: float
    #: When its last chunk left the external link.
    completed_us: float
    #: Functional result; ``n_senses``/``latency_us`` count only the
    #: flash work actually spent on this query (shared senses are
    #: billed to the query that executed them).
    result: QueryResult
    #: Chunk tasks of this query served by another query's sense.
    shared_chunks: int

    @property
    def wait_us(self) -> float:
        """Time spent queued before the window closed."""
        return self.admitted_us - self.submitted_us

    @property
    def latency_us(self) -> float:
        """Submission-to-delivery service latency."""
        return self.completed_us - self.submitted_us


@dataclass(frozen=True)
class ServiceReport:
    """Everything one :meth:`QueryService.run` produced."""

    queries: tuple[ServedQuery, ...]
    stats: ServiceStats

    def latencies_us(self, client: str | None = None) -> list[float]:
        return [
            q.latency_us
            for q in self.queries
            if client is None or q.client == client
        ]

    def client_latency(self, client: str) -> LatencySummary:
        return LatencySummary.from_latencies(self.latencies_us(client))


class _QueryState:
    """Mutable per-query accumulator while a run executes."""

    __slots__ = (
        "submission", "prepared", "pieces", "n_senses", "energy_nj",
        "chip_busy", "shared_chunks", "admitted_us", "completed_us",
    )

    def __init__(self, submission, prepared) -> None:
        self.submission = submission
        self.prepared = prepared
        self.pieces: list[np.ndarray | None] = [None] * prepared.n_chunks
        self.n_senses = 0
        self.energy_nj = 0.0
        self.chip_busy: dict[int, float] = {}
        self.shared_chunks = 0
        self.admitted_us = 0.0
        self.completed_us = 0.0


class QueryService:
    """Accepts timed query submissions, serves them in scheduled,
    sense-shared admission windows (see the package docstring)."""

    def __init__(
        self,
        ssd: SmallSsd,
        *,
        window_us: float = 200.0,
        max_window_queries: int | None = None,
        policy: str = "balanced",
        share_senses: bool = True,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {POLICIES}"
            )
        self.ssd = ssd
        self.engine = ssd.engine
        self.policy = policy
        self.share_senses = share_senses
        self.admission = AdmissionQueue(
            window_us=window_us, max_queries=max_window_queries
        )
        self._next_id = 0

    # ------------------------------------------------------------------
    # Submission side
    # ------------------------------------------------------------------

    def submit(
        self, expr: Expression, *, at_us: float, client: str = "client"
    ) -> int:
        """Enqueue one query arriving at virtual time ``at_us``;
        returns its query id."""
        query_id = self._next_id
        self._next_id += 1
        self.admission.submit(
            Submission(
                query_id=query_id,
                client=client,
                expr=expr,
                submitted_us=at_us,
            )
        )
        return query_id

    def submit_traffic(self, submissions) -> list[int]:
        """Enqueue ``(at_us, client, expr)`` triples (the client
        generators' output, :func:`repro.service.clients.generate_traffic`)."""
        return [
            self.submit(expr, at_us=at_us, client=client)
            for at_us, client, expr in submissions
        ]

    # ------------------------------------------------------------------
    # Execution side
    # ------------------------------------------------------------------

    def _estimate(self, task: ChunkTask) -> float:
        executor = self.ssd.controllers[task.chip].executor
        return executor.estimate_latency_us(task.plan)

    def run(self) -> ServiceReport:
        """Serve every pending submission and drain the queue.

        Windows execute in close order; every window's chunk jobs
        enter one shared event simulation with ``ready_at`` equal to
        the window close time, so cross-window contention (a window
        queuing behind the previous one's stragglers) is exact.
        """
        windows = self.admission.windows()
        states: dict[int, _QueryState] = {}
        jobs: list[StageJob] = []
        job_owner: list[int] = []
        n_chunk_tasks = 0
        shared_plans = 0
        shared_senses = 0
        total_senses = 0

        for window in windows:
            tasks: list[ChunkTask] = []
            for submission in window.submissions:
                prepared = self.engine.prepare(submission.expr)
                state = _QueryState(submission, prepared)
                state.admitted_us = window.close_us
                states[submission.query_id] = state
                tasks.extend(prepared.tasks(query=submission.query_id))
            ordered = schedule_window(
                tasks,
                self._estimate,
                policy=self.policy,
                share=self.share_senses,
            )
            outcomes = self.engine.execute_tasks(
                ordered, share=self.share_senses
            )
            n_chunk_tasks += len(ordered)
            ready_s = window.close_us * 1e-6
            for outcome in outcomes:
                task = outcome.task
                state = states[task.query]
                state.pieces[task.chunk] = outcome.data
                state.n_senses += outcome.n_senses
                state.energy_nj += outcome.energy_nj
                state.chip_busy[task.chip] = (
                    state.chip_busy.get(task.chip, 0.0)
                    + outcome.latency_us
                )
                total_senses += outcome.n_senses
                if outcome.shared:
                    state.shared_chunks += 1
                    shared_plans += 1
                    shared_senses += task.plan.n_senses
                jobs.append(
                    self.engine.stage_job(
                        task.chip, outcome.latency_us, ready_at_s=ready_s
                    )
                )
                job_owner.append(task.query)

        # Every window executed: only now drain the admission queue,
        # so an exception above (e.g. a query over non-co-located
        # vectors) leaves the pending submissions intact for a retry.
        self.admission = AdmissionQueue(
            window_us=self.admission.window_us,
            max_queries=self.admission.max_queries,
        )

        report = simulate_stages(jobs)
        for completion_s, owner in zip(report.completion_times, job_owner):
            state = states[owner]
            state.completed_us = max(state.completed_us, completion_s * 1e6)

        served = tuple(
            self._served(state) for state in sorted(
                states.values(), key=lambda s: s.submission.query_id
            )
        )
        stats = self._stats(
            served,
            n_windows=len(windows),
            n_chunk_tasks=n_chunk_tasks,
            n_senses=total_senses,
            shared_plans=shared_plans,
            shared_senses=shared_senses,
            makespan_us=report.makespan * 1e6,
            bottleneck=report.bottleneck,
        )
        return ServiceReport(queries=served, stats=stats)

    def _served(self, state: _QueryState) -> ServedQuery:
        submission = state.submission
        result = QueryResult(
            bits=self.engine.assemble_bits(state.prepared, state.pieces),
            n_senses=state.n_senses,
            latency_us=max(state.chip_busy.values(), default=0.0),
            energy_nj=state.energy_nj,
            makespan_us=state.completed_us - state.admitted_us,
            template_hit=state.prepared.template_hit,
        )
        return ServedQuery(
            query_id=submission.query_id,
            client=submission.client,
            expr=submission.expr,
            submitted_us=submission.submitted_us,
            admitted_us=state.admitted_us,
            completed_us=state.completed_us,
            result=result,
            shared_chunks=state.shared_chunks,
        )

    @staticmethod
    def _stats(
        served: tuple[ServedQuery, ...],
        *,
        n_windows: int,
        n_chunk_tasks: int,
        n_senses: int,
        shared_plans: int,
        shared_senses: int,
        makespan_us: float,
        bottleneck: str,
    ) -> ServiceStats:
        latency = LatencySummary.from_latencies(
            [q.latency_us for q in served]
        )
        if served:
            span_us = max(q.completed_us for q in served) - min(
                q.submitted_us for q in served
            )
        else:
            span_us = 0.0
        throughput = len(served) / (span_us * 1e-6) if span_us > 0 else 0.0
        return ServiceStats(
            n_queries=len(served),
            n_windows=n_windows,
            n_chunk_tasks=n_chunk_tasks,
            n_senses=n_senses,
            shared_plans=shared_plans,
            shared_senses=shared_senses,
            template_hits=sum(q.result.template_hit for q in served),
            latency=latency,
            throughput_qps=throughput,
            span_us=span_us,
            makespan_us=makespan_us,
            bottleneck=bottleneck,
        )
