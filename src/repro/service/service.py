"""The query service: windows in, scheduled shared execution out.

:class:`QueryService` composes the whole serving story: timed
submissions (optionally carrying a priority and a deadline) collect in
an :class:`~repro.service.admission.AdmissionQueue` (grid or adaptive
windows), each window's bound chunk plans are ordered by a scheduling
policy (``fifo`` / ``balanced`` / deadline-aware ``edf``), executed
with cross-query sense sharing and -- when ``result_cache`` is on --
the engine's cross-window :class:`~repro.ssd.query_engine.ResultCache`
consulted first, and every chunk job is replayed through one exact
event simulation so latencies, deadline conformance, and the
bottleneck resource are simulation-accurate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.expressions import Expression
from repro.flash.faults import RecoveryPolicy
from repro.service.admission import AdmissionQueue, Submission
from repro.service.health import (
    QUARANTINED,
    ChipHealthTracker,
    HealthConfig,
)
from repro.service.metrics import LatencySummary, ServiceStats
from repro.service.scheduler import (
    POLICIES,
    QueryInfo,
    job_directives,
    schedule_window,
)
from repro.ssd.controller import QueryResult, SmallSsd
from repro.ssd.events import ArbitrationConfig, StageJob, simulate_stages
from repro.ssd.maintenance import MaintenanceConfig, MaintenanceManager
from repro.ssd.query_engine import ChunkTask


@dataclass(frozen=True)
class ServedQuery:
    """One query's journey through the service."""

    query_id: int
    client: str
    expr: Expression
    submitted_us: float
    #: When the query's admission window closed (execution eligible).
    admitted_us: float
    #: When its last chunk left the external link.
    completed_us: float
    #: Functional result; ``n_senses``/``latency_us`` count only the
    #: flash work actually spent on this query (shared senses are
    #: billed to the query that executed them; cache-served chunks
    #: were paid for by a previous window).
    result: QueryResult
    #: Chunk tasks of this query served by another query's sense in
    #: the same window.
    shared_chunks: int
    #: Chunk tasks of this query served from the cross-window result
    #: cache.
    cached_chunks: int = 0
    priority: int = 0
    deadline_us: float | None = None
    #: Typed fault the query surfaced (``None`` on success); a failed
    #: query carries an empty result vector.
    error: Exception | None = None
    #: Extra recovered sense attempts spent on this query's chunks.
    retries: int = 0
    #: Chunk executions served on the degraded V_TH path.
    degraded_chunks: int = 0
    #: Virtual recovery time (backoff + stalls) charged to this
    #: query's pipeline jobs.  Retry-plane only: parity reconstruction
    #: time is reported separately in ``reconstruction_us`` so
    #: "recovered via retry" and "recovered via parity" stay
    #: distinguishable.
    fault_overhead_us: float = 0.0
    #: Chunk results of this query rebuilt from parity after a chip
    #: failure, and the survivor chip time those rebuilds charged to
    #: this query's pipeline jobs.
    reconstructed_chunks: int = 0
    reconstruction_us: float = 0.0

    @property
    def failed(self) -> bool:
        return self.error is not None

    @property
    def fault_affected(self) -> bool:
        """Whether any fault-plane mechanism touched this query."""
        return (
            self.error is not None
            or self.retries > 0
            or self.degraded_chunks > 0
            or self.fault_overhead_us > 0.0
            or self.reconstructed_chunks > 0
            or self.reconstruction_us > 0.0
        )

    @property
    def wait_us(self) -> float:
        """Time spent queued before the window closed."""
        return self.admitted_us - self.submitted_us

    @property
    def latency_us(self) -> float:
        """Submission-to-delivery service latency."""
        return self.completed_us - self.submitted_us

    @property
    def deadline_met(self) -> bool | None:
        """Whether the query completed by its deadline (``None`` for
        best-effort queries that stated none)."""
        if self.deadline_us is None:
            return None
        return self.completed_us <= self.deadline_us


@dataclass(frozen=True)
class ServiceReport:
    """Everything one :meth:`QueryService.run` produced."""

    queries: tuple[ServedQuery, ...]
    stats: ServiceStats

    def latencies_us(self, client: str | None = None) -> list[float]:
        return [
            q.latency_us
            for q in self.queries
            if client is None or q.client == client
        ]

    def client_latency(self, client: str) -> LatencySummary:
        return LatencySummary.from_latencies(self.latencies_us(client))


class _QueryState:
    """Mutable per-query accumulator while a run executes."""

    __slots__ = (
        "submission", "prepared", "pieces", "n_senses", "energy_nj",
        "chip_busy", "shared_chunks", "cached_chunks", "admitted_us",
        "completed_us", "error", "retries", "degraded_chunks",
        "fault_us", "reconstructed_chunks", "reconstruction_us",
    )

    def __init__(self, submission, prepared) -> None:
        self.submission = submission
        self.prepared = prepared
        self.pieces: list[np.ndarray | None] = [None] * prepared.n_chunks
        self.n_senses = 0
        self.energy_nj = 0.0
        self.chip_busy: dict[int, float] = {}
        self.shared_chunks = 0
        self.cached_chunks = 0
        self.admitted_us = 0.0
        self.completed_us = 0.0
        self.error: Exception | None = None
        self.retries = 0
        self.degraded_chunks = 0
        self.fault_us = 0.0
        self.reconstructed_chunks = 0
        self.reconstruction_us = 0.0


class QueryService:
    """Accepts timed query submissions, serves them in scheduled,
    sense-shared admission windows (see the package docstring).

    Service-level options beyond the admission/scheduling basics:

    ``result_cache`` / ``result_cache_size``
        Enable the engine's cross-window
        :class:`~repro.ssd.query_engine.ResultCache`: windows consult
        it before dedup, so traffic repeating earlier windows' shapes
        skips the sensing engine entirely.  The cache lives on the
        engine and survives across :meth:`run` calls (and across
        services sharing one SSD); it is invalidated by any layout
        generation movement (register/unregister/program/erase).
        Off by default -- the synchronous ``SmallSsd.query`` oracle
        and existing baselines stay cache-free.
        ``result_cache_size=None`` (the default) adopts the shared
        cache as-is; an explicit size resizes it for every sharer.

    ``tenant_weights``
        ``client name -> weight`` shares for the ``edf`` policy's
        weighted-fair drain of deadline-free traffic (default weight
        1.0).

    ``adaptive_window`` (+ ``min_window_us`` / ``max_window_us`` /
    ``target_window_queries``)
        Let the admission controller retune ``window_us`` to the
        observed arrival rate (see
        :class:`~repro.service.admission.AdmissionQueue`).

    ``workers``
        Drain each window's per-chip queues concurrently on the
        engine's shared thread pool (``1`` = the exact sequential
        drain, the default).  Outcomes and counters are bit-/float-
        identical at any worker count; only wall-clock changes.

    ``preemption`` (+ ``suspend_cost_us`` / ``resume_cost_us`` /
    ``max_suspends``)
        Replay every window's chunk jobs through the *arbitrated*
        event simulation instead of the FCFS sweep: deadline queries
        become urgent non-preemptible job streams that may suspend
        in-flight preemptible bulk senses at a contended die or
        channel (EDF order, starvation-capped at ``max_suspends``
        suspensions per sense, each costing the configured
        suspend/resume penalties).  The report then carries
        preemption counts, overhead, and per-resource utilization.
        Off by default: without it the simulation is the exact FCFS
        baseline every existing result was measured on.

    ``recovery`` / ``health``
        Fault tolerance (:mod:`repro.flash.faults`,
        :mod:`repro.service.health`).  When the SSD carries an active
        :class:`~repro.flash.faults.FaultInjector`, windows execute
        under bounded retry/backoff with degraded-mode (V_TH path)
        fallback -- an explicit
        :class:`~repro.flash.faults.RecoveryPolicy` overrides the
        default.  Every window's per-chip error rates feed an EWMA
        circuit breaker (:class:`~repro.service.health.ChipHealthTracker`)
        that marks sick chips degraded (served on the safe V_TH path,
        priced by the scheduler) or quarantined (parked; their tasks
        fail fast with ``ChipUnavailableError``); any quarantine
        transition bumps the chip's directory generation so bound
        plans and cached results rebind before service resumes.

    ``maintenance``
        The background maintenance plane
        (:mod:`repro.ssd.maintenance`).  Pass ``True`` for the default
        :class:`~repro.ssd.maintenance.MaintenanceConfig`, a config,
        or an existing
        :class:`~repro.ssd.maintenance.MaintenanceManager`.  Per
        window the manager paces garbage collection against free-block
        pressure (low/high watermarks) and its copy/erase work joins
        the event simulation as preemptible,
        :data:`~repro.ssd.events.MAINTENANCE_PRIORITY` background jobs
        -- under ``preemption`` an urgent sense suspends an in-flight
        GC copy.  Stuck bad blocks are scrubbed out of the allocation
        pool up front, and when the health tracker quarantines a chip
        its live vectors drain to healthy chips during probation.
        ``ServiceStats`` then reports blocks reclaimed, pages
        migrated, wear spread, and the background overhead.  Off by
        default: without it no data ever moves and free blocks are
        never reclaimed.
    """

    def __init__(
        self,
        ssd: SmallSsd,
        *,
        window_us: float = 200.0,
        max_window_queries: int | None = None,
        policy: str = "balanced",
        share_senses: bool = True,
        result_cache: bool = False,
        result_cache_size: int | None = None,
        tenant_weights: dict[str, float] | None = None,
        adaptive_window: bool = False,
        min_window_us: float | None = None,
        max_window_us: float | None = None,
        target_window_queries: int = 8,
        workers: int = 1,
        preemption: bool = False,
        suspend_cost_us: float = 0.0,
        resume_cost_us: float = 0.0,
        max_suspends: int = 2,
        recovery: RecoveryPolicy | None = None,
        health: HealthConfig | None = None,
        maintenance: (
            MaintenanceManager | MaintenanceConfig | bool | None
        ) = None,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; choose from {POLICIES}"
            )
        self.ssd = ssd
        self.engine = ssd.engine
        #: Retry/backoff/degradation policy for fault recovery.  An
        #: explicit policy is always honoured; ``None`` adopts the
        #: default :class:`~repro.flash.faults.RecoveryPolicy`
        #: whenever the SSD carries an active fault injector (the
        #: engine itself disables recovery when injection is off, so
        #: the fault-free path is untouched either way).
        self.recovery = recovery
        #: Per-chip EWMA health tracking + quarantine breaker; always
        #: on (a fault-free run simply never observes an error).
        self.health = ChipHealthTracker(len(ssd.chips), config=health)
        self.policy = policy
        self.share_senses = share_senses
        self.workers = max(1, int(workers))
        #: Arbitration config the event replay runs under; ``None``
        #: keeps the exact FCFS sweep (the measured baseline).
        self.arbitration: ArbitrationConfig | None = (
            ArbitrationConfig(
                suspend_cost_s=suspend_cost_us * 1e-6,
                resume_cost_s=resume_cost_us * 1e-6,
                max_suspends=max_suspends,
            )
            if preemption
            else None
        )
        self.use_result_cache = result_cache
        if result_cache:
            self.engine.enable_result_cache(result_cache_size)
        #: Background maintenance plane (GC/wear/migration); ``None``
        #: disables it and leaves every existing path untouched.
        if maintenance is None or maintenance is False:
            self.maintenance: MaintenanceManager | None = None
        elif isinstance(maintenance, MaintenanceManager):
            self.maintenance = maintenance
        elif isinstance(maintenance, MaintenanceConfig):
            self.maintenance = ssd.maintenance(maintenance)
        else:
            self.maintenance = ssd.maintenance()
        self.tenant_weights = dict(tenant_weights or {})
        self.admission = AdmissionQueue(
            window_us=window_us,
            max_queries=max_window_queries,
            adaptive=adaptive_window,
            min_window_us=min_window_us,
            max_window_us=max_window_us,
            target_queries=target_window_queries,
        )
        self._next_id = 0

    # ------------------------------------------------------------------
    # Submission side
    # ------------------------------------------------------------------

    def submit(
        self,
        expr: Expression,
        *,
        at_us: float,
        client: str = "client",
        priority: int = 0,
        deadline_us: float | None = None,
    ) -> int:
        """Enqueue one query arriving at virtual time ``at_us``;
        returns its query id.  ``deadline_us`` is absolute virtual
        time; the ``edf`` policy schedules toward it and the report
        grades it (other policies record but ignore it)."""
        query_id = self._next_id
        self._next_id += 1
        self.admission.submit(
            Submission(
                query_id=query_id,
                client=client,
                expr=expr,
                submitted_us=at_us,
                priority=priority,
                deadline_us=deadline_us,
            )
        )
        return query_id

    def submit_traffic(self, submissions) -> list[int]:
        """Enqueue a traffic trace -- ``(at_us, client, expr)`` triples
        or the 5-field ``(at_us, client, expr, priority, deadline_us)``
        items :func:`repro.service.clients.generate_traffic` emits."""
        ids = []
        for item in submissions:
            at_us, client, expr = item[0], item[1], item[2]
            priority = item[3] if len(item) > 3 else 0
            deadline_us = item[4] if len(item) > 4 else None
            ids.append(
                self.submit(
                    expr,
                    at_us=at_us,
                    client=client,
                    priority=priority,
                    deadline_us=deadline_us,
                )
            )
        return ids

    # ------------------------------------------------------------------
    # Execution side
    # ------------------------------------------------------------------

    def _estimate(self, task: ChunkTask) -> float:
        executor = self.ssd.controllers[task.chip].executor
        return executor.estimate_latency_us(task.plan)

    def _query_info(self, submission: Submission) -> QueryInfo:
        return QueryInfo(
            client=submission.client,
            priority=submission.priority,
            deadline_us=submission.deadline_us,
            weight=self.tenant_weights.get(submission.client, 1.0),
        )

    def run(self) -> ServiceReport:
        """Serve every pending submission and drain the queue.

        Windows execute in close order; every window's chunk jobs
        enter one shared event simulation with ``ready_at`` equal to
        the window close time, so cross-window contention (a window
        queuing behind the previous one's stragglers) is exact.
        """
        windows = self.admission.windows()
        states: dict[int, _QueryState] = {}
        jobs: list[StageJob] = []
        #: Query id per job; ``None`` marks background maintenance
        #: jobs, which complete in the simulation but belong to no
        #: query.
        job_owner: list[int | None] = []
        n_chunk_tasks = 0
        shared_plans = 0
        shared_senses = 0
        cached_plans = 0
        cached_senses = 0
        total_senses = 0
        fault_retries = 0
        degraded_senses = 0
        fault_overhead_us = 0.0
        reconstructed_plans = 0
        reconstruction_senses = 0
        reconstruction_overhead_us = 0.0
        chips_lost = 0
        #: Whether any chip error (or chip loss) has been observed this
        #: run -- only then do health weights feed the FTL's stripe
        #: allocation, keeping fault-free runs byte-identical to an SSD
        #: that never heard of health.
        errors_seen = False
        #: With parity striping on the SSD, the engine's phase-two
        #: reconstruction replaces chip-loss failures with parity-
        #: rebuilt results, and the scheduler prices offline chips'
        #: tasks as degraded work instead of parking them.
        reconstruct = bool(getattr(self.ssd, "parity", False))
        injector = getattr(self.ssd, "fault_injector", None)
        recovery = self.recovery
        if (
            recovery is None
            and injector is not None
            and injector.active
        ):
            recovery = RecoveryPolicy()
        faults_before = injector.faults_injected if injector else 0
        quarantines_before = self.health.quarantines
        manager = self.maintenance
        if manager is not None:
            maint_before = (
                manager.stats.blocks_reclaimed,
                manager.stats.pages_migrated,
                manager.stats.blocks_retired,
                manager.stats.chips_drained,
                manager.stats.columns_rebuilt,
                manager.stats.busy_us,
            )
            # Stuck bad blocks never re-enter the allocation pool.
            manager.scrub_bad_blocks()

        #: Background chip microseconds pending inside the event
        #: simulation, per chip -- the scheduler prices this into its
        #: cross-chip interleave so foreground tails avoid dies busy
        #: with GC.
        pending_gc_busy: dict[int, float] = {}

        def enqueue_background(background: list[StageJob]) -> None:
            jobs.extend(background)
            job_owner.extend([None] * len(background))
            for job in background:
                resource = job.resources[0]
                if resource.startswith("chip"):
                    chip = int(resource[4:])
                    pending_gc_busy[chip] = (
                        pending_gc_busy.get(chip, 0.0)
                        + job.durations[0] * 1e6
                    )

        for window in windows:
            ready_s = window.close_us * 1e-6
            # Fail-stop detection: a chip that went offline since the
            # last window (``SmallSsd.kill_chip``) is quarantined
            # permanently *before* scheduling -- waiting for error
            # statistics would burn windows of failed traffic.  The
            # placement-event generation bump and the probation drain
            # happen here, mirroring the EWMA quarantine path below.
            for chip_id, chip in enumerate(self.ssd.chips):
                if not getattr(chip, "offline", False):
                    continue
                if self.health.is_permanent(chip_id):
                    continue
                chips_lost += 1
                errors_seen = True
                if self.health.force_quarantine(chip_id, permanent=True):
                    self.ssd.controllers[chip_id].directory.generation += 1
                if manager is not None:
                    enqueue_background(
                        manager.drain_chip(
                            chip_id,
                            healthy=self.health.survivors(exclude=chip_id),
                            ready_at_s=ready_s,
                        )
                    )
            tasks: list[ChunkTask] = []
            info: dict[int, QueryInfo] = {}
            for submission in window.submissions:
                prepared = self.engine.prepare(submission.expr)
                state = _QueryState(submission, prepared)
                state.admitted_us = window.close_us
                states[submission.query_id] = state
                info[submission.query_id] = self._query_info(submission)
                tasks.extend(prepared.tasks(query=submission.query_id))
            degraded_chips = self.health.degraded
            offline_chips = self.health.offline
            ordered = schedule_window(
                tasks,
                self._estimate,
                policy=self.policy,
                share=self.share_senses,
                info=info,
                degraded=degraded_chips,
                offline=offline_chips,
                gc_busy=pending_gc_busy,
                reconstruct=reconstruct,
            )
            outcomes = self.engine.execute_tasks(
                ordered,
                share=self.share_senses,
                use_cache=self.use_result_cache,
                workers=self.workers,
                recovery=recovery,
                degraded=degraded_chips,
                offline=offline_chips,
                reconstruct=reconstruct,
            )
            n_chunk_tasks += len(ordered)
            # The scheduler's intent, threaded into the event replay:
            # deadline queries arbitrate EDF-style and may suspend
            # preemptible bulk (harmless no-ops under the FCFS sweep).
            directives = {
                query_id: job_directives(meta)
                for query_id, meta in info.items()
            }
            chip_obs: dict[int, list[int]] = {}
            for outcome in outcomes:
                task = outcome.task
                state = states[task.query]
                state.pieces[task.chunk] = outcome.data
                state.n_senses += outcome.n_senses
                state.energy_nj += outcome.energy_nj
                state.chip_busy[task.chip] = (
                    state.chip_busy.get(task.chip, 0.0)
                    + outcome.latency_us
                )
                total_senses += outcome.n_senses
                if outcome.error is not None and state.error is None:
                    state.error = outcome.error
                state.retries += outcome.retries
                state.fault_us += outcome.recovery_us
                fault_retries += outcome.retries
                fault_overhead_us += outcome.recovery_us
                if outcome.reconstructed:
                    # Recovered via parity: counted apart from the
                    # retry plane so the report separates "recovered
                    # via retry" from "recovered via parity".  The
                    # survivor reads ride ``recovery_work`` (leader
                    # only; shared followers paid nothing) and are
                    # charged to the right dies below.
                    state.reconstructed_chunks += 1
                    reconstructed_plans += 1
                    if not outcome.shared:
                        reconstruction_senses += outcome.n_senses
                    for rchip, busy_us in outcome.recovery_work:
                        state.chip_busy[rchip] = (
                            state.chip_busy.get(rchip, 0.0) + busy_us
                        )
                        state.reconstruction_us += busy_us
                        reconstruction_overhead_us += busy_us
                if outcome.degraded:
                    state.degraded_chunks += 1
                if outcome.cached:
                    state.cached_chunks += 1
                    cached_plans += 1
                    cached_senses += task.plan.n_senses
                elif outcome.shared:
                    state.shared_chunks += 1
                    shared_plans += 1
                    shared_senses += task.plan.n_senses
                else:
                    if outcome.degraded:
                        degraded_senses += 1
                    if task.chip not in offline_chips:
                        # One real recovered execution: every attempt
                        # is an operation; faulted attempts (and a
                        # surfaced failure) are errors.  Parked tasks
                        # never touched the chip, so they do not feed
                        # its health signal.
                        obs = chip_obs.setdefault(task.chip, [0, 0])
                        obs[0] += outcome.retries + 1
                        # A reconstructed chunk means the chip failed
                        # its attempt even though the query recovered
                        # -- the health signal must still see the
                        # failure.
                        obs[1] += outcome.retries + (
                            1
                            if outcome.error is not None
                            or outcome.reconstructed
                            else 0
                        )
                priority, deadline_s, preemptible = directives[task.query]
                jobs.append(
                    self.engine.stage_job(
                        task.chip,
                        outcome.latency_us,
                        ready_at_s=ready_s,
                        priority=priority,
                        deadline_s=deadline_s,
                        preemptible=preemptible,
                        fault_delay_us=outcome.recovery_us,
                    )
                )
                job_owner.append(task.query)
                for rchip, busy_us in outcome.recovery_work:
                    # Survivor reads of a parity reconstruction occupy
                    # real dies: they join the event simulation as
                    # query-owned jobs, so the query's completion time
                    # and the survivors' utilization both see them.
                    jobs.append(
                        self.engine.stage_job(
                            rchip,
                            busy_us,
                            ready_at_s=ready_s,
                            priority=priority,
                            deadline_s=deadline_s,
                            preemptible=preemptible,
                        )
                    )
                    job_owner.append(task.query)
            transitions = self.health.observe_window(
                {
                    chip: (ops, errors)
                    for chip, (ops, errors) in chip_obs.items()
                }
            )
            if any(obs[1] for obs in chip_obs.values()):
                errors_seen = True
            if errors_seen:
                # Wear/error-history-driven placement: feed the
                # breaker's EWMA into the FTL's stripe allocation so
                # *new* chunk columns skew away from sick chips (dead
                # chips get weight 0 and receive nothing).  Until the
                # first error this never runs, and the FTL clears
                # uniform weights to ``None`` -- the fault-free stripe
                # stays the pure ``c % n`` layout, byte-identical.
                self.ssd.ftl.set_chip_health(
                    {
                        chip: (
                            0.0
                            if self.health.state(chip) == QUARANTINED
                            else max(
                                0.05,
                                1.0 - self.health.error_rate(chip),
                            )
                        )
                        for chip in range(self.health.n_chips)
                    }
                )
            moved_before = (
                0
                if manager is None
                else manager.stats.pages_migrated
                + manager.stats.blocks_reclaimed
                + manager.stats.columns_rebuilt
            )
            for chip, old, new in transitions:
                if QUARANTINED in (old, new):
                    # Placement event: entering quarantine parks the
                    # chip, leaving re-admits it -- either way every
                    # bound plan and cached result stamped against
                    # the old world must rebind (same contract as
                    # register/unregister).
                    self.ssd.controllers[chip].directory.generation += 1
                if new == QUARANTINED and manager is not None:
                    # Probation drain: migrate the parked chip's live
                    # vectors to chips still in service, so the next
                    # windows answer from healthy silicon instead of
                    # failing the chip's tasks.
                    survivors = self.health.survivors(exclude=chip)
                    enqueue_background(
                        manager.drain_chip(
                            chip, healthy=survivors, ready_at_s=ready_s
                        )
                    )
            if manager is not None:
                # Pace GC against free-block pressure: background
                # copy/erase jobs become ready at this window's close
                # and compete with later windows' foreground work.
                enqueue_background(manager.run_cycle(ready_at_s=ready_s))
                if manager.pending_rebuild:
                    # Rebuild-on-repair: re-materialize columns and
                    # parity pages lost with a dead chip from the
                    # surviving group members, paced per window by the
                    # maintenance budget.
                    enqueue_background(
                        manager.rebuild_cycle(
                            healthy=self.health.survivors(),
                            ready_at_s=ready_s,
                        )
                    )
                moved = (
                    manager.stats.pages_migrated
                    + manager.stats.blocks_reclaimed
                    + manager.stats.columns_rebuilt
                ) != moved_before
                if moved and self.engine.result_cache is not None:
                    # Relocation went stale on whole swaths of cached
                    # entries at once; drop them in bulk so the LRU
                    # capacity keeps working for live results.
                    self.engine.result_cache.prune_stale()

        # Every window executed: only now drain the admission queue,
        # so an exception above (e.g. a query over non-co-located
        # vectors) leaves the pending submissions intact for a retry.
        self.admission = self.admission.empty_clone()

        report = simulate_stages(jobs, arbitration=self.arbitration)
        for completion_s, owner in zip(report.completion_times, job_owner):
            if owner is None:
                continue  # background maintenance job, no query
            state = states[owner]
            state.completed_us = max(state.completed_us, completion_s * 1e6)

        served = tuple(
            self._served(state) for state in sorted(
                states.values(), key=lambda s: s.submission.query_id
            )
        )
        stats = self._stats(
            served,
            n_windows=len(windows),
            n_chunk_tasks=n_chunk_tasks,
            n_senses=total_senses,
            shared_plans=shared_plans,
            shared_senses=shared_senses,
            cached_plans=cached_plans,
            cached_senses=cached_senses,
            makespan_us=report.makespan * 1e6,
            bottleneck=report.bottleneck,
            preemptions=report.preemptions,
            preemption_overhead_us=report.preemption_overhead * 1e6,
            resource_utilization=report.utilizations(),
            faults_injected=(
                injector.faults_injected - faults_before if injector else 0
            ),
            fault_retries=fault_retries,
            degraded_senses=degraded_senses,
            quarantines=self.health.quarantines - quarantines_before,
            fault_overhead_us=fault_overhead_us,
            reconstructed_plans=reconstructed_plans,
            reconstruction_senses=reconstruction_senses,
            reconstruction_overhead_us=reconstruction_overhead_us,
            chips_lost=chips_lost,
            **self._maintenance_kwargs(
                manager, maint_before if manager is not None else None
            ),
        )
        return ServiceReport(queries=served, stats=stats)

    def _maintenance_kwargs(
        self, manager: MaintenanceManager | None, before
    ) -> dict:
        """This run's maintenance deltas plus the SSD's wear spread."""
        wear = self.ssd.wear_summary()
        out = {
            "wear_min": wear.pe_min,
            "wear_max": wear.pe_max,
            "wear_mean": wear.pe_mean,
        }
        if manager is None:
            return out
        reclaimed, migrated, retired, drained, rebuilt, busy_us = before
        stats = manager.stats
        out.update(
            blocks_reclaimed=stats.blocks_reclaimed - reclaimed,
            pages_migrated=stats.pages_migrated - migrated,
            blocks_retired=stats.blocks_retired - retired,
            chips_drained=stats.chips_drained - drained,
            columns_rebuilt=stats.columns_rebuilt - rebuilt,
            maintenance_overhead_us=stats.busy_us - busy_us,
        )
        return out

    def _served(self, state: _QueryState) -> ServedQuery:
        submission = state.submission
        if state.error is not None:
            # A failed query has no assembled result (some chunks
            # never produced data); it still reports the flash work
            # and sim time its attempts cost.
            bits = np.zeros(0, dtype=np.uint8)
        else:
            bits = self.engine.assemble_bits(state.prepared, state.pieces)
        result = QueryResult(
            bits=bits,
            n_senses=state.n_senses,
            latency_us=max(state.chip_busy.values(), default=0.0),
            energy_nj=state.energy_nj,
            makespan_us=state.completed_us - state.admitted_us,
            template_hit=state.prepared.template_hit,
        )
        return ServedQuery(
            query_id=submission.query_id,
            client=submission.client,
            expr=submission.expr,
            submitted_us=submission.submitted_us,
            admitted_us=state.admitted_us,
            completed_us=state.completed_us,
            result=result,
            shared_chunks=state.shared_chunks,
            cached_chunks=state.cached_chunks,
            priority=submission.priority,
            deadline_us=submission.deadline_us,
            error=state.error,
            retries=state.retries,
            degraded_chunks=state.degraded_chunks,
            fault_overhead_us=state.fault_us,
            reconstructed_chunks=state.reconstructed_chunks,
            reconstruction_us=state.reconstruction_us,
        )

    @staticmethod
    def _stats(
        served: tuple[ServedQuery, ...],
        *,
        n_windows: int,
        n_chunk_tasks: int,
        n_senses: int,
        shared_plans: int,
        shared_senses: int,
        cached_plans: int,
        cached_senses: int,
        makespan_us: float,
        bottleneck: str,
        preemptions: int = 0,
        preemption_overhead_us: float = 0.0,
        resource_utilization: dict[str, float] | None = None,
        faults_injected: int = 0,
        fault_retries: int = 0,
        degraded_senses: int = 0,
        quarantines: int = 0,
        fault_overhead_us: float = 0.0,
        reconstructed_plans: int = 0,
        reconstruction_senses: int = 0,
        reconstruction_overhead_us: float = 0.0,
        chips_lost: int = 0,
        columns_rebuilt: int = 0,
        blocks_reclaimed: int = 0,
        pages_migrated: int = 0,
        blocks_retired: int = 0,
        chips_drained: int = 0,
        maintenance_overhead_us: float = 0.0,
        wear_min: int = 0,
        wear_max: int = 0,
        wear_mean: float = 0.0,
    ) -> ServiceStats:
        latency = LatencySummary.from_latencies(
            [q.latency_us for q in served]
        )
        if served:
            span_us = max(q.completed_us for q in served) - min(
                q.submitted_us for q in served
            )
        else:
            span_us = 0.0
        throughput = len(served) / (span_us * 1e-6) if span_us > 0 else 0.0
        with_deadline = [q for q in served if q.deadline_us is not None]
        fault_attributed_misses = sum(
            1
            for q in with_deadline
            if q.deadline_met is False and q.fault_affected
        )
        return ServiceStats(
            n_queries=len(served),
            n_windows=n_windows,
            n_chunk_tasks=n_chunk_tasks,
            n_senses=n_senses,
            shared_plans=shared_plans,
            shared_senses=shared_senses,
            cached_plans=cached_plans,
            cached_senses=cached_senses,
            template_hits=sum(q.result.template_hit for q in served),
            n_deadlines=len(with_deadline),
            deadlines_met=sum(bool(q.deadline_met) for q in with_deadline),
            latency=latency,
            throughput_qps=throughput,
            span_us=span_us,
            makespan_us=makespan_us,
            bottleneck=bottleneck,
            preemptions=preemptions,
            preemption_overhead_us=preemption_overhead_us,
            resource_utilization=resource_utilization or {},
            faults_injected=faults_injected,
            fault_retries=fault_retries,
            degraded_senses=degraded_senses,
            quarantines=quarantines,
            queries_failed=sum(1 for q in served if q.error is not None),
            fault_overhead_us=fault_overhead_us,
            fault_attributed_misses=fault_attributed_misses,
            reconstructed_plans=reconstructed_plans,
            reconstruction_senses=reconstruction_senses,
            reconstruction_overhead_us=reconstruction_overhead_us,
            chips_lost=chips_lost,
            columns_rebuilt=columns_rebuilt,
            blocks_reclaimed=blocks_reclaimed,
            pages_migrated=pages_migrated,
            blocks_retired=blocks_retired,
            chips_drained=chips_drained,
            maintenance_overhead_us=maintenance_overhead_us,
            wear_min=wear_min,
            wear_max=wear_max,
            wear_mean=wear_mean,
        )
