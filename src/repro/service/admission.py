"""Admission windows: batching concurrent submissions for scheduling.

The service amortizes planning, scheduling, and sensing across
*windows* of queries rather than serving each submission in isolation
(the batching move of in-DRAM bulk-bitwise execution engines, applied
to in-flash queries).  Submissions are grouped onto a fixed time grid
of ``window_us`` cells; a window admits everything that arrived inside
its cell and closes at the cell boundary -- or *early*, at the arrival
time of the query that fills it, when ``max_queries`` caps the window
(a full window should not wait out its cell while clients queue).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.expressions import Expression


@dataclass(frozen=True)
class Submission:
    """One client query stamped with its virtual arrival time."""

    query_id: int
    client: str
    expr: Expression
    submitted_us: float

    def __post_init__(self) -> None:
        if self.submitted_us < 0:
            raise ValueError("submitted_us must be >= 0")


@dataclass(frozen=True)
class AdmissionWindow:
    """A closed batch of submissions handed to the scheduler.

    ``close_us`` is when the window's queries become runnable: every
    pipeline job of the window carries it as the arrival time into the
    event simulation, so a query's service latency includes the time
    it waited for its window to close.
    """

    index: int
    close_us: float
    submissions: tuple[Submission, ...]

    def __post_init__(self) -> None:
        late = [
            s for s in self.submissions if s.submitted_us > self.close_us
        ]
        if late:
            raise ValueError(
                f"window closing at {self.close_us} us admitted "
                f"submissions arriving later: {late!r}"
            )

    def __len__(self) -> int:
        return len(self.submissions)


class AdmissionQueue:
    """Collects submissions and cuts them into admission windows."""

    def __init__(
        self, *, window_us: float = 200.0, max_queries: int | None = None
    ) -> None:
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        if max_queries is not None and max_queries < 1:
            raise ValueError("max_queries must be >= 1 (or None)")
        self.window_us = window_us
        self.max_queries = max_queries
        self._submissions: list[Submission] = []

    def submit(self, submission: Submission) -> None:
        self._submissions.append(submission)

    def __len__(self) -> int:
        return len(self._submissions)

    def windows(self) -> list[AdmissionWindow]:
        """Cut the collected submissions into closed windows.

        Submissions are ordered by (arrival time, query id) -- the id
        breaks ties deterministically for simultaneous arrivals -- and
        grouped by grid cell ``floor(t / window_us)``; cells holding
        more than ``max_queries`` split into sub-windows that close
        early at their last admitted arrival.
        """
        ordered = sorted(
            self._submissions, key=lambda s: (s.submitted_us, s.query_id)
        )
        windows: list[AdmissionWindow] = []
        cell: list[Submission] = []
        cell_index = 0

        def close(batch: list[Submission], close_us: float) -> None:
            windows.append(
                AdmissionWindow(
                    index=len(windows),
                    close_us=close_us,
                    submissions=tuple(batch),
                )
            )

        for submission in ordered:
            index = int(submission.submitted_us // self.window_us)
            if cell and index != cell_index:
                close(cell, (cell_index + 1) * self.window_us)
                cell = []
            cell_index = index
            cell.append(submission)
            if self.max_queries and len(cell) == self.max_queries:
                # Full: close immediately at this arrival instead of
                # waiting out the grid cell.
                close(cell, submission.submitted_us)
                cell = []
        if cell:
            close(cell, (cell_index + 1) * self.window_us)
        return windows
