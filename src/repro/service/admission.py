"""Admission windows: batching concurrent submissions for scheduling.

The service amortizes planning, scheduling, and sensing across
*windows* of queries rather than serving each submission in isolation
(the batching move of in-DRAM bulk-bitwise execution engines, applied
to in-flash queries).  Submissions are grouped onto a fixed time grid
of ``window_us`` cells; a window admits everything that arrived inside
its cell and closes at the cell boundary -- or *early*, at the arrival
time of the query that fills it, when ``max_queries`` caps the window
(a full window should not wait out its cell while clients queue).

**Adaptive windows.**  The window length is the service's central
latency/efficiency trade: a longer window gathers more queries, so
more senses dedup and more result-cache hits land together -- but
every admitted query waits for the close, so p99 grows with it.  With
``adaptive=True`` the admission controller retunes the length per
window from the *observed* arrival rate (an EWMA of interarrival
gaps): it aims for ``target_queries`` per window, so bursts shrink the
window toward ``min_window_us`` (nothing gained by waiting -- the
sharing candidates already arrived) and sparse traffic stretches it
toward ``max_window_us`` (waiting is the only way to find sharing
partners).  Adaptive windows are cut sequentially from the arrival
trace rather than on a fixed grid, and a window opens no earlier than
the previous window's close.

Submissions may carry a ``priority`` and an absolute ``deadline_us``;
admission records them and the scheduler's ``edf`` policy orders by
them (see :mod:`repro.service.scheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.expressions import Expression


@dataclass(frozen=True)
class Submission:
    """One client query stamped with its virtual arrival time.

    ``priority`` breaks scheduling ties (higher is more important);
    ``deadline_us`` is an absolute virtual-clock deadline the ``edf``
    policy targets and the service reports against (``None`` =
    best-effort).  Both are inert under the ``fifo``/``balanced``
    policies.
    """

    query_id: int
    client: str
    expr: Expression
    submitted_us: float
    priority: int = 0
    deadline_us: float | None = None

    def __post_init__(self) -> None:
        if self.submitted_us < 0:
            raise ValueError("submitted_us must be >= 0")
        if self.deadline_us is not None and self.deadline_us <= self.submitted_us:
            raise ValueError(
                "deadline_us must be after the submission time "
                f"({self.deadline_us} <= {self.submitted_us})"
            )


@dataclass(frozen=True)
class AdmissionWindow:
    """A closed batch of submissions handed to the scheduler.

    ``close_us`` is when the window's queries become runnable: every
    pipeline job of the window carries it as the arrival time into the
    event simulation, so a query's service latency includes the time
    it waited for its window to close.
    """

    index: int
    close_us: float
    submissions: tuple[Submission, ...]

    def __post_init__(self) -> None:
        late = [
            s for s in self.submissions if s.submitted_us > self.close_us
        ]
        if late:
            raise ValueError(
                f"window closing at {self.close_us} us admitted "
                f"submissions arriving later: {late!r}"
            )

    def __len__(self) -> int:
        return len(self.submissions)


class AdmissionQueue:
    """Collects submissions and cuts them into admission windows.

    Two cutting modes:

    * **grid** (default): windows are the cells of a fixed
      ``window_us`` grid -- simple, and what the service property
      suite randomizes over;
    * **adaptive** (``adaptive=True``): the controller retunes each
      window's length from an EWMA of observed interarrival gaps,
      aiming for ``target_queries`` admitted per window and clamping
      to ``[min_window_us, max_window_us]`` (see module docstring).

    ``max_queries`` caps a window in both modes (early close at the
    filling arrival).
    """

    #: EWMA smoothing for the observed interarrival gap.  One window
    #: admits several queries, so even a heavily smoothed estimate
    #: adapts within a window or two of a rate change.
    EWMA_ALPHA = 0.3

    def __init__(
        self,
        *,
        window_us: float = 200.0,
        max_queries: int | None = None,
        adaptive: bool = False,
        min_window_us: float | None = None,
        max_window_us: float | None = None,
        target_queries: int = 8,
    ) -> None:
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        if max_queries is not None and max_queries < 1:
            raise ValueError("max_queries must be >= 1 (or None)")
        if target_queries < 1:
            raise ValueError("target_queries must be >= 1")
        self.window_us = window_us
        self.max_queries = max_queries
        self.adaptive = adaptive
        self.min_window_us = (
            min_window_us if min_window_us is not None else window_us / 8.0
        )
        self.max_window_us = (
            max_window_us if max_window_us is not None else window_us * 8.0
        )
        if self.min_window_us <= 0:
            raise ValueError("min_window_us must be positive")
        if self.max_window_us < self.min_window_us:
            raise ValueError("max_window_us must be >= min_window_us")
        self.target_queries = target_queries
        self._submissions: list[Submission] = []

    def submit(self, submission: Submission) -> None:
        self._submissions.append(submission)

    def __len__(self) -> int:
        return len(self._submissions)

    def empty_clone(self) -> "AdmissionQueue":
        """A fresh queue with this queue's configuration -- how the
        service drains served submissions without losing its admission
        tuning."""
        return AdmissionQueue(
            window_us=self.window_us,
            max_queries=self.max_queries,
            adaptive=self.adaptive,
            min_window_us=self.min_window_us,
            max_window_us=self.max_window_us,
            target_queries=self.target_queries,
        )

    def windows(self) -> list[AdmissionWindow]:
        """Cut the collected submissions into closed windows.

        Submissions are ordered by (arrival time, query id) -- the id
        breaks ties deterministically for simultaneous arrivals.  In
        grid mode they group by cell ``floor(t / window_us)``; in
        adaptive mode windows are cut sequentially with per-window
        lengths from the rate estimator.  In both modes a cell holding
        more than ``max_queries`` splits into sub-windows that close
        early at their last admitted arrival.
        """
        ordered = sorted(
            self._submissions, key=lambda s: (s.submitted_us, s.query_id)
        )
        if self.adaptive:
            return self._adaptive_windows(ordered)
        windows: list[AdmissionWindow] = []
        cell: list[Submission] = []
        cell_index = 0

        def close(batch: list[Submission], close_us: float) -> None:
            windows.append(
                AdmissionWindow(
                    index=len(windows),
                    close_us=close_us,
                    submissions=tuple(batch),
                )
            )

        for submission in ordered:
            index = int(submission.submitted_us // self.window_us)
            if cell and index != cell_index:
                close(cell, (cell_index + 1) * self.window_us)
                cell = []
            cell_index = index
            cell.append(submission)
            if self.max_queries and len(cell) == self.max_queries:
                # Full: close immediately at this arrival instead of
                # waiting out the grid cell.
                close(cell, submission.submitted_us)
                cell = []
        if cell:
            close(cell, (cell_index + 1) * self.window_us)
        return windows

    def _adaptive_windows(
        self, ordered: list[Submission]
    ) -> list[AdmissionWindow]:
        """Sequential cutting with rate-adapted window lengths.

        Each window opens at ``max(previous close, next arrival)`` and
        closes ``length`` later (or early when ``max_queries`` fills
        it).  After each window the controller re-estimates the
        arrival rate from an EWMA of the interarrival gaps seen so far
        and sets the next length to ``target_queries * gap``, clamped
        to the configured bounds -- the deterministic counterpart of a
        controller measuring its ingress rate online.
        """
        windows: list[AdmissionWindow] = []
        length = min(max(self.window_us, self.min_window_us), self.max_window_us)
        ewma: float | None = None
        previous_arrival: float | None = None
        previous_close = 0.0
        i = 0
        n = len(ordered)
        while i < n:
            open_us = max(previous_close, ordered[i].submitted_us)
            close_us = open_us + length
            batch: list[Submission] = []
            while i < n and ordered[i].submitted_us <= close_us:
                submission = ordered[i]
                if previous_arrival is not None:
                    gap = submission.submitted_us - previous_arrival
                    ewma = (
                        gap
                        if ewma is None
                        else (1.0 - self.EWMA_ALPHA) * ewma
                        + self.EWMA_ALPHA * gap
                    )
                previous_arrival = submission.submitted_us
                batch.append(submission)
                i += 1
                if self.max_queries and len(batch) == self.max_queries:
                    # Early close at the filling arrival -- but never
                    # before the window opened (a backlogged arrival
                    # can predate the open when the previous window
                    # filled first).
                    close_us = max(submission.submitted_us, open_us)
                    break
            windows.append(
                AdmissionWindow(
                    index=len(windows),
                    close_us=close_us,
                    submissions=tuple(batch),
                )
            )
            previous_close = close_us
            if ewma is not None:
                length = min(
                    max(self.target_queries * ewma, self.min_window_us),
                    self.max_window_us,
                )
        return windows
