"""Virtual time for the query service: a clock plus arrival processes.

The service is *simulated-async*: clients do not run on threads, they
emit submissions stamped with virtual-clock times, and the service
replays the whole trace deterministically (admission windows close at
clock times, pipeline jobs become ready at those times, and the event
simulator resolves all contention).  Determinism is what lets the
randomized property suite compare every served query bit-for-bit
against the synchronous oracle.

Arrival processes model how client traffic spaces itself on that
clock: open-loop Poisson (the classic service-benchmark arrival
model), uniform pacing with optional jitter, and on/off bursts (many
queries back to back, then a gap) -- the pattern that makes admission
windows and cross-query sense sharing earn their keep.

All three are *open-loop*: the process never looks at how the service
is coping.  Closed-loop behaviour -- clients throttling because they
observed latency -- is modelled one level up, by
:class:`repro.service.clients.ClosedLoopController` adjusting the rate
of a fresh ``PoissonArrivals`` between rounds; the processes here stay
memoryless so a single run's trace remains a pure function of (rng,
parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class VirtualClock:
    """Monotonic simulated time in microseconds."""

    now_us: float = 0.0

    def advance(self, dt_us: float) -> float:
        """Move time forward by ``dt_us`` and return the new time."""
        if dt_us < 0:
            raise ValueError("time cannot flow backwards")
        self.now_us += dt_us
        return self.now_us

    def advance_to(self, t_us: float) -> float:
        """Move time forward to ``t_us`` (no-op if already past it)."""
        self.now_us = max(self.now_us, t_us)
        return self.now_us


class ArrivalProcess:
    """Spacing between consecutive submissions of one client."""

    def interarrival_us(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def reset(self) -> None:
        """Restart any internal phase (default: stateless)."""

    def arrival_times(
        self,
        n: int,
        rng: np.random.Generator,
        *,
        start_us: float = 0.0,
    ) -> list[float]:
        """The first ``n`` arrival times of this process.  Each call
        starts the process from phase zero, so a reused instance
        yields reproducible traces for identical (n, rng-state)."""
        self.reset()
        clock = VirtualClock(start_us)
        return [clock.advance(self.interarrival_us(rng)) for _ in range(n)]


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Open-loop Poisson traffic at ``rate_qps`` queries per second."""

    rate_qps: float

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be positive")

    def interarrival_us(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1e6 / self.rate_qps))


@dataclass(frozen=True)
class UniformArrivals(ArrivalProcess):
    """Fixed pacing every ``period_us``, with optional +-jitter."""

    period_us: float
    jitter_us: float = 0.0

    def __post_init__(self) -> None:
        if self.period_us <= 0:
            raise ValueError("period_us must be positive")
        if not 0.0 <= self.jitter_us <= self.period_us:
            raise ValueError("jitter_us must be in [0, period_us]")

    def interarrival_us(self, rng: np.random.Generator) -> float:
        if self.jitter_us == 0.0:
            return self.period_us
        return self.period_us + float(
            rng.uniform(-self.jitter_us, self.jitter_us)
        )


@dataclass
class BurstArrivals(ArrivalProcess):
    """On/off bursts: ``burst_size`` queries ``intra_gap_us`` apart,
    then an idle ``burst_gap_us`` before the next burst -- the arrival
    shape that packs many queries into one admission window."""

    burst_size: int
    burst_gap_us: float
    intra_gap_us: float = 0.0
    _emitted: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if self.burst_gap_us < 0 or self.intra_gap_us < 0:
            raise ValueError("gaps must be >= 0")

    def reset(self) -> None:
        self._emitted = 0

    def interarrival_us(self, rng: np.random.Generator) -> float:
        gap = (
            self.burst_gap_us
            if self._emitted and self._emitted % self.burst_size == 0
            else self.intra_gap_us
        )
        self._emitted += 1
        return gap
