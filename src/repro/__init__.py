"""Flash-Cosmos reproduction.

A production-quality reimplementation of *Flash-Cosmos: In-Flash Bulk
Bitwise Operations Using Inherent Computation Capability of NAND Flash
Memory* (Park et al., MICRO 2022): a behavioural/statistical NAND
flash substrate, the Flash-Cosmos mechanisms (multi-wordline sensing
and enhanced SLC-mode programming), the ParaBit baseline, an SSD/host
performance and energy model, the paper's three workloads, and the
characterization campaigns behind every figure.

Quick start::

    import numpy as np
    from repro import FlashCosmos, NandFlashChip, ChipGeometry
    from repro.core.expressions import And, Operand

    chip = NandFlashChip(ChipGeometry(blocks_per_plane=8,
                                      page_size_bits=1024),
                         inject_errors=False)
    fc = FlashCosmos(chip)
    a = np.random.randint(0, 2, 1024, dtype=np.uint8)
    b = np.random.randint(0, 2, 1024, dtype=np.uint8)
    fc.fc_write("a", a, group="g")
    fc.fc_write("b", b, group="g")
    result = fc.fc_read(And(Operand("a"), Operand("b")))
    assert (result.bits == (a & b)).all()
"""

from repro.core.api import FlashCosmos
from repro.core.expressions import And, Not, Operand, Or, Xnor, Xor
from repro.core.parabit import ParaBit
from repro.flash.chip import NandFlashChip
from repro.flash.errors import OperatingCondition
from repro.flash.geometry import ChipGeometry
from repro.host.system import SystemEvaluator
from repro.ssd.config import SsdConfig, fig7_config, table1_config
from repro.ssd.controller import SmallSsd
from repro.ssd.pipeline import Platform

__version__ = "1.0.0"

__all__ = [
    "And",
    "ChipGeometry",
    "FlashCosmos",
    "NandFlashChip",
    "Not",
    "Operand",
    "OperatingCondition",
    "Or",
    "ParaBit",
    "Platform",
    "SmallSsd",
    "SsdConfig",
    "SystemEvaluator",
    "Xnor",
    "Xor",
    "fig7_config",
    "table1_config",
]
