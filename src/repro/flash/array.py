"""Cell-array storage: V_TH state of blocks and planes.

``BlockArray`` models one sub-block (the paper's "block"): a 2-D array
of threshold voltages, one row per wordline, one column per bitline.
``PlaneArray`` lazily materializes blocks so a realistically sized
plane (2,048 blocks) costs memory only for the blocks a test touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flash.calibration import DEFAULT_CALIBRATION, FlashCalibration
from repro.flash.geometry import BlockAddress, ChipGeometry
from repro.flash.ispp import IsppEngine, ProgramMode, ProgramResult


@dataclass
class WordlineMetadata:
    """Firmware-visible metadata for one programmed wordline.

    ``randomizer_page_index`` records which page's keystream encoded
    the stored data; copyback moves raw cells without re-randomizing,
    so the destination keeps the source's keystream index.
    """

    mode: ProgramMode = ProgramMode.SLC
    esp_extra: float = 0.0
    randomized: bool = True
    programmed: bool = False
    randomizer_page_index: int | None = None


class BlockArray:
    """V_TH state of one sub-block.

    Attributes
    ----------
    vth:
        float32 array of shape (wordlines, bitlines): the pristine
        as-programmed threshold voltages.  Stress-induced drift is
        applied at *sense* time by the error model so that conditions
        compose without mutating stored state.
    written:
        uint8 array of the same shape: the ground-truth bits handed to
        ``program`` (after randomization, i.e. what the cells encode).
    """

    def __init__(
        self,
        geometry: ChipGeometry,
        address: BlockAddress,
        *,
        calibration: FlashCalibration | None = None,
        rng: np.random.Generator | None = None,
        noise_enabled: bool = True,
    ) -> None:
        address.validate(geometry)
        self.geometry = geometry
        self.address = address
        self.calibration = calibration or DEFAULT_CALIBRATION
        self.rng = rng or np.random.default_rng(0)
        #: When False the block is an idealized, noise-free array:
        #: post-program relaxation is skipped (paired with disabling
        #: sense-time error injection).
        self.noise_enabled = noise_enabled
        self.pe_cycles = 0
        self.reads_since_erase = 0
        self.sigma_multiplier = 1.0
        n_wl = geometry.wordlines_per_string
        n_bl = geometry.page_size_bits
        self.vth = np.empty((n_wl, n_bl), dtype=np.float32)
        self.written = np.ones((n_wl, n_bl), dtype=np.uint8)
        #: MLC state indices per cell (0..3); row used only when the
        #: wordline's mode is MLC.
        self._mlc_states = np.zeros((n_wl, n_bl), dtype=np.uint8)
        #: MSB bits of MLC wordlines (LSB bits live in ``written``).
        self._mlc_msb = np.ones((n_wl, n_bl), dtype=np.uint8)
        self.metadata = [WordlineMetadata() for _ in range(n_wl)]
        self._ispp = IsppEngine(self.calibration)
        self._fill_erased()

    # ------------------------------------------------------------------
    # Erase / program
    # ------------------------------------------------------------------

    def _fill_erased(self) -> None:
        c = self.calibration.slc
        shape = self.vth.shape
        self.vth[:] = c.erased_mean + c.erased_sigma * self.rng.standard_normal(
            shape
        ).astype(np.float32)
        self.written[:] = 1
        self._mlc_states[:] = 0
        self._mlc_msb[:] = 1
        for meta in self.metadata:
            meta.programmed = False
            meta.mode = ProgramMode.SLC
            meta.esp_extra = 0.0
            meta.randomized = True
            meta.randomizer_page_index = None

    def erase(self) -> None:
        """Erase the whole sub-block, incrementing its P/E count."""
        self.pe_cycles += 1
        self.reads_since_erase = 0
        self._fill_erased()

    def program(
        self,
        wordline: int,
        data_bits: np.ndarray,
        *,
        mode: ProgramMode = ProgramMode.SLC,
        esp_extra: float = 0.0,
        randomized: bool = True,
    ) -> ProgramResult:
        """Program one wordline with ``data_bits`` (1 = erased, 0 =
        programmed).  Only SLC-family modes are functionally simulated;
        MLC/TLC pages exist for capacity/latency accounting and raise
        here to catch accidental functional use."""
        if mode in (ProgramMode.MLC, ProgramMode.TLC):
            raise NotImplementedError(
                "functional programming is modeled for SLC/ESP only; "
                "MLC/TLC are used for latency/capacity accounting"
            )
        meta = self.metadata[wordline]
        if meta.programmed:
            raise ValueError(
                f"wordline {wordline} already programmed; erase the block first"
            )
        data = np.asarray(data_bits, dtype=np.uint8)
        if data.shape != (self.geometry.page_size_bits,):
            raise ValueError(
                f"page must have {self.geometry.page_size_bits} bits, "
                f"got shape {data.shape}"
            )
        extra = esp_extra if mode is ProgramMode.ESP else 0.0
        result = self._ispp.program_slc(
            self.vth[wordline],
            data,
            self.rng,
            esp_extra=extra,
            apply_relaxation=self.noise_enabled,
        )
        self.written[wordline] = data
        meta.programmed = True
        meta.mode = mode
        meta.esp_extra = extra
        meta.randomized = randomized
        return result

    def program_mlc(
        self,
        wordline: int,
        lsb_bits: np.ndarray,
        msb_bits: np.ndarray,
        *,
        randomized: bool = True,
    ) -> None:
        """Program one wordline in MLC mode (two logical pages).

        Gray coding per Figure 5(b): (MSB, LSB) = E:11, P1:01, P2:00,
        P3:10.  The LSB page alone is recoverable with a single read
        at VREF2, which is why Flash-Cosmos can operate on MLC LSB
        pages (Section 9, footnote 15).
        """
        meta = self.metadata[wordline]
        if meta.programmed:
            raise ValueError(
                f"wordline {wordline} already programmed; erase the block first"
            )
        lsb = np.asarray(lsb_bits, dtype=np.uint8)
        msb = np.asarray(msb_bits, dtype=np.uint8)
        expected = (self.geometry.page_size_bits,)
        if lsb.shape != expected or msb.shape != expected:
            raise ValueError(
                f"MLC pages must have {self.geometry.page_size_bits} bits"
            )
        # (msb, lsb) -> state: 11->E(0), 01->P1(1), 00->P2(2), 10->P3(3).
        states = np.select(
            [
                (msb == 1) & (lsb == 1),
                (msb == 0) & (lsb == 1),
                (msb == 0) & (lsb == 0),
            ],
            [0, 1, 2],
            default=3,
        ).astype(np.uint8)
        from repro.flash.errors import ErrorModel

        window = ErrorModel(self.calibration).mlc_window()
        vth = np.empty(states.shape, dtype=np.float32)
        for index, level in enumerate(window.levels):
            mask = states == index
            vth[mask] = level.mean + level.sigma * self.rng.standard_normal(
                int(mask.sum())
            ).astype(np.float32)
        self.vth[wordline] = vth
        self.written[wordline] = lsb
        self._mlc_states[wordline] = states
        self._mlc_msb[wordline] = msb
        meta.programmed = True
        meta.mode = ProgramMode.MLC
        meta.esp_extra = 0.0
        meta.randomized = randomized

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stored_bits(self, wordline: int) -> np.ndarray:
        """Ground-truth bits of a wordline (LSB page for MLC; copy)."""
        return self.written[wordline].copy()

    def stored_msb_bits(self, wordline: int) -> np.ndarray:
        """Ground-truth MSB page of an MLC wordline (copy)."""
        if self.metadata[wordline].mode is not ProgramMode.MLC:
            raise ValueError("wordline is not MLC-programmed")
        return self._mlc_msb[wordline].copy()

    def mlc_states(self, rows: np.ndarray) -> np.ndarray:
        """Per-cell MLC state indices for the given wordline rows."""
        return self._mlc_states[rows]

    def programmed_mask(self) -> np.ndarray:
        """Boolean mask of cells in the programmed state."""
        return self.written == 0

    def wordline_esp_extra(self, wordline: int) -> float:
        return self.metadata[wordline].esp_extra

    def note_read(self, count: int = 1) -> None:
        self.reads_since_erase += count


@dataclass
class PlaneArray:
    """Lazy map from block address to materialized :class:`BlockArray`."""

    geometry: ChipGeometry
    calibration: FlashCalibration = field(default_factory=lambda: DEFAULT_CALIBRATION)
    seed: int = 0
    noise_enabled: bool = True
    _blocks: dict[BlockAddress, BlockArray] = field(default_factory=dict)

    def block(self, address: BlockAddress) -> BlockArray:
        address.validate(self.geometry)
        if address not in self._blocks:
            # Derive a per-block RNG stream so block contents are
            # reproducible regardless of materialization order.
            key = (
                self.seed,
                address.plane,
                address.block,
                address.subblock,
            )
            rng = np.random.default_rng(abs(hash(key)) % (2**63))
            self._blocks[address] = BlockArray(
                self.geometry,
                address,
                calibration=self.calibration,
                rng=rng,
                noise_enabled=self.noise_enabled,
            )
        return self._blocks[address]

    def materialized(self) -> tuple[BlockAddress, ...]:
        return tuple(sorted(self._blocks))

    def __contains__(self, address: BlockAddress) -> bool:
        return address in self._blocks
