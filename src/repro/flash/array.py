"""Cell-array storage: packed logical bits plus V_TH state of blocks.

``BlockArray`` models one sub-block (the paper's "block") with two
representations of its cells:

* the **functional plane** -- every wordline's logical bits packed 64
  per ``uint64`` word (:mod:`repro.flash.packing`).  This is the
  ground truth the error-free sensing fast path computes on, at 1/8
  byte per cell;
* the **error plane** -- a float32 threshold-voltage matrix the error
  model perturbs at sense time.  With ``noise_enabled`` it is eagerly
  materialized and programmed through ISPP exactly as before; for
  idealized (noise-free) blocks it is *lazily* materialized with
  mean-valued distributions only when something actually asks for it
  (read-retry offsets, V_TH introspection).

``PlaneArray`` lazily materializes blocks so a realistically sized
plane (2,048 blocks) costs memory only for the blocks a test touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flash.calibration import DEFAULT_CALIBRATION, FlashCalibration
from repro.flash.geometry import BlockAddress, ChipGeometry
from repro.flash.ispp import IsppEngine, ProgramMode, ProgramResult
from repro.flash.packing import (
    FULL_WORD,
    pack_bits,
    unpack_rows,
    unpack_words,
    words_per_page,
)


@dataclass
class WordlineMetadata:
    """Firmware-visible metadata for one programmed wordline.

    ``randomizer_page_index`` records which page's keystream encoded
    the stored data; copyback moves raw cells without re-randomizing,
    so the destination keeps the source's keystream index.
    """

    mode: ProgramMode = ProgramMode.SLC
    esp_extra: float = 0.0
    randomized: bool = True
    programmed: bool = False
    randomizer_page_index: int | None = None


class BlockArray:
    """Logical-bit and V_TH state of one sub-block.

    Attributes
    ----------
    vth:
        float32 array of shape (wordlines, bitlines): the pristine
        as-programmed threshold voltages.  Stress-induced drift is
        applied at *sense* time by the error model so that conditions
        compose without mutating stored state.  For noise-free blocks
        the matrix is materialized lazily with idealized (mean-valued)
        distributions.
    written:
        uint8 array of the same shape: the ground-truth bits handed to
        ``program`` (after randomization, i.e. what the cells encode).
        Derived on access from the packed functional plane.
    """

    def __init__(
        self,
        geometry: ChipGeometry,
        address: BlockAddress,
        *,
        calibration: FlashCalibration | None = None,
        rng: np.random.Generator | None = None,
        noise_enabled: bool = True,
    ) -> None:
        address.validate(geometry)
        self.geometry = geometry
        self.address = address
        self.calibration = calibration or DEFAULT_CALIBRATION
        self.rng = rng or np.random.default_rng(0)
        #: When False the block is an idealized, noise-free array:
        #: post-program relaxation is skipped (paired with disabling
        #: sense-time error injection) and the V_TH plane stays
        #: unmaterialized unless explicitly asked for.
        self.noise_enabled = noise_enabled
        self.pe_cycles = 0
        #: Lifetime program count (wear-plane bookkeeping; unlike
        #: ``pe_cycles`` this is never reset and counts every page
        #: program, including GC copyback destinations).
        self.programs = 0
        self.reads_since_erase = 0
        self.sigma_multiplier = 1.0
        #: Bumped on every program/erase; consumers that memoize
        #: per-wordline metadata scans (the chip's batched-sense
        #: resolution cache) revalidate when it moves.
        self.layout_version = 0
        n_wl = geometry.wordlines_per_string
        n_bl = geometry.page_size_bits
        self._n_words = words_per_page(n_bl)
        #: Packed functional plane: one row of uint64 words per
        #: wordline, padding bits held at one (the erased state).
        self._packed = np.empty((n_wl, self._n_words), dtype=np.uint64)
        self._vth: np.ndarray | None = None
        #: MLC state indices / MSB pages, allocated on first MLC
        #: program (the functional hot path never touches them).
        self._mlc_states: np.ndarray | None = None
        self._mlc_msb: np.ndarray | None = None
        self.metadata = [WordlineMetadata() for _ in range(n_wl)]
        self._ispp = IsppEngine(self.calibration)
        self._fill_erased()

    # ------------------------------------------------------------------
    # Erase / program
    # ------------------------------------------------------------------

    def _fill_erased(self) -> None:
        self._packed[:] = FULL_WORD
        if self.noise_enabled:
            c = self.calibration.slc
            if self._vth is None:
                self._vth = np.empty(
                    (
                        self.geometry.wordlines_per_string,
                        self.geometry.page_size_bits,
                    ),
                    dtype=np.float32,
                )
            shape = self._vth.shape
            self._vth[:] = (
                c.erased_mean
                + c.erased_sigma
                * self.rng.standard_normal(shape).astype(np.float32)
            )
        else:
            self._vth = None
        if self._mlc_states is not None:
            self._mlc_states[:] = 0
            self._mlc_msb[:] = 1
        for meta in self.metadata:
            meta.programmed = False
            meta.mode = ProgramMode.SLC
            meta.esp_extra = 0.0
            meta.randomized = True
            meta.randomizer_page_index = None

    def erase(self) -> None:
        """Erase the whole sub-block, incrementing its P/E count."""
        self.pe_cycles += 1
        self.reads_since_erase = 0
        self.layout_version += 1
        self._fill_erased()

    def program(
        self,
        wordline: int,
        data_bits: np.ndarray,
        *,
        mode: ProgramMode = ProgramMode.SLC,
        esp_extra: float = 0.0,
        randomized: bool = True,
    ) -> ProgramResult:
        """Program one wordline with ``data_bits`` (1 = erased, 0 =
        programmed).  ``data_bits`` may be an unpacked 0/1 page or an
        already-packed ``uint64`` word row (the SSD ingest path packs
        once and hands words all the way down).  Only SLC-family modes
        are functionally simulated; MLC/TLC pages exist for
        capacity/latency accounting and raise here to catch accidental
        functional use."""
        if mode in (ProgramMode.MLC, ProgramMode.TLC):
            raise NotImplementedError(
                "functional programming is modeled for SLC/ESP only; "
                "MLC/TLC are used for latency/capacity accounting"
            )
        meta = self.metadata[wordline]
        if meta.programmed:
            raise ValueError(
                f"wordline {wordline} already programmed; erase the block first"
            )
        data = np.asarray(data_bits)
        n_bl = self.geometry.page_size_bits
        if data.dtype == np.uint64:
            if data.shape != (self._n_words,):
                raise ValueError(
                    f"packed page must have {self._n_words} words, "
                    f"got shape {data.shape}"
                )
            packed_row = data
            bits = unpack_words(data, n_bl) if self.noise_enabled else None
        else:
            bits = np.asarray(data_bits, dtype=np.uint8)
            if bits.shape != (n_bl,):
                raise ValueError(
                    f"page must have {n_bl} bits, got shape {bits.shape}"
                )
            packed_row = pack_bits(bits)
        extra = esp_extra if mode is ProgramMode.ESP else 0.0
        if self.noise_enabled:
            result = self._ispp.program_slc(
                self._vth[wordline],
                bits,
                self.rng,
                esp_extra=extra,
                apply_relaxation=True,
            )
        else:
            # Idealized block: the functional plane is the packed row;
            # discard any lazily materialized V_TH so a later access
            # rebuilds it consistently.
            self._vth = None
            result = ProgramResult(
                pulses=0,
                latency_us=self._ispp.program_latency_us(mode, extra),
                failed_cells=0,
            )
        self._packed[wordline] = packed_row
        meta.programmed = True
        meta.mode = mode
        meta.esp_extra = extra
        meta.randomized = randomized
        self.programs += 1
        self.layout_version += 1
        return result

    def program_mlc(
        self,
        wordline: int,
        lsb_bits: np.ndarray,
        msb_bits: np.ndarray,
        *,
        randomized: bool = True,
    ) -> None:
        """Program one wordline in MLC mode (two logical pages).

        Gray coding per Figure 5(b): (MSB, LSB) = E:11, P1:01, P2:00,
        P3:10.  The LSB page alone is recoverable with a single read
        at VREF2, which is why Flash-Cosmos can operate on MLC LSB
        pages (Section 9, footnote 15).
        """
        meta = self.metadata[wordline]
        if meta.programmed:
            raise ValueError(
                f"wordline {wordline} already programmed; erase the block first"
            )
        lsb = np.asarray(lsb_bits, dtype=np.uint8)
        msb = np.asarray(msb_bits, dtype=np.uint8)
        expected = (self.geometry.page_size_bits,)
        if lsb.shape != expected or msb.shape != expected:
            raise ValueError(
                f"MLC pages must have {self.geometry.page_size_bits} bits"
            )
        if self._mlc_states is None:
            shape = (
                self.geometry.wordlines_per_string,
                self.geometry.page_size_bits,
            )
            self._mlc_states = np.zeros(shape, dtype=np.uint8)
            self._mlc_msb = np.ones(shape, dtype=np.uint8)
        # (msb, lsb) -> state: 11->E(0), 01->P1(1), 00->P2(2), 10->P3(3).
        states = np.select(
            [
                (msb == 1) & (lsb == 1),
                (msb == 0) & (lsb == 1),
                (msb == 0) & (lsb == 0),
            ],
            [0, 1, 2],
            default=3,
        ).astype(np.uint8)
        from repro.flash.errors import ErrorModel

        window = ErrorModel(self.calibration).mlc_window()
        vth = np.empty(states.shape, dtype=np.float32)
        for index, level in enumerate(window.levels):
            mask = states == index
            vth[mask] = level.mean + level.sigma * self.rng.standard_normal(
                int(mask.sum())
            ).astype(np.float32)
        self._mlc_states[wordline] = states
        self._mlc_msb[wordline] = msb
        self._packed[wordline] = pack_bits(lsb)
        meta.programmed = True
        meta.mode = ProgramMode.MLC
        meta.esp_extra = 0.0
        meta.randomized = randomized
        self.programs += 1
        self.layout_version += 1
        # Write the V_TH row last: for noise-free blocks the property
        # access materializes the idealized plane first.
        self.vth[wordline] = vth

    # ------------------------------------------------------------------
    # Error plane (V_TH)
    # ------------------------------------------------------------------

    @property
    def vth(self) -> np.ndarray:
        """The V_TH error plane; materialized on first use for
        noise-free blocks."""
        if self._vth is None:
            self._vth = self._idealized_vth()
        return self._vth

    def _idealized_vth(self) -> np.ndarray:
        """Mean-valued V_TH matrix consistent with the packed
        functional plane of a noise-free block: erased cells at the
        erased mean, programmed cells at the (mode, ESP-effort) target
        mean, MLC cells at their state-level means."""
        c = self.calibration.slc
        vth = np.full(
            (
                self.geometry.wordlines_per_string,
                self.geometry.page_size_bits,
            ),
            c.erased_mean,
            dtype=np.float32,
        )
        mlc_means: np.ndarray | None = None
        for wl, meta in enumerate(self.metadata):
            if not meta.programmed:
                continue
            if meta.mode is ProgramMode.MLC:
                if mlc_means is None:
                    from repro.flash.errors import ErrorModel

                    window = ErrorModel(self.calibration).mlc_window()
                    mlc_means = np.array(
                        [level.mean for level in window.levels],
                        dtype=np.float32,
                    )
                vth[wl] = mlc_means[self._mlc_states[wl]]
            else:
                target = (
                    c.programmed_mean
                    + c.esp_target_raise * meta.esp_extra**c.esp_gamma
                )
                row = vth[wl]
                row[unpack_words(self._packed[wl], row.size) == 0] = target
        return vth

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def written(self) -> np.ndarray:
        """Ground-truth bits of every wordline (unpacked view of the
        functional plane; a fresh array, safe to mutate)."""
        return unpack_rows(self._packed, self.geometry.page_size_bits)

    def packed_rows(self, rows: np.ndarray) -> np.ndarray:
        """Packed word rows of the selected wordlines (the error-free
        sensing fast path operates directly on these)."""
        return self._packed[rows]

    def stored_rows(self, rows: np.ndarray) -> np.ndarray:
        """Unpacked 0/1 pages of the selected wordlines."""
        return unpack_rows(
            self._packed[rows], self.geometry.page_size_bits
        )

    def programmed_rows(self, rows: np.ndarray) -> np.ndarray:
        """Boolean programmed-cell mask of the selected wordlines."""
        return self.stored_rows(rows) == 0

    def stored_bits(self, wordline: int) -> np.ndarray:
        """Ground-truth bits of a wordline (LSB page for MLC)."""
        return unpack_words(
            self._packed[wordline], self.geometry.page_size_bits
        )

    def stored_msb_bits(self, wordline: int) -> np.ndarray:
        """Ground-truth MSB page of an MLC wordline (copy)."""
        if self.metadata[wordline].mode is not ProgramMode.MLC:
            raise ValueError("wordline is not MLC-programmed")
        return self._mlc_msb[wordline].copy()

    def mlc_states(self, rows: np.ndarray) -> np.ndarray:
        """Per-cell MLC state indices for the given wordline rows."""
        if self._mlc_states is None:
            return np.zeros(
                (len(rows), self.geometry.page_size_bits), dtype=np.uint8
            )
        return self._mlc_states[rows]

    def programmed_mask(self) -> np.ndarray:
        """Boolean mask of cells in the programmed state."""
        return self.written == 0

    def resident_bytes(self) -> int:
        """Bytes currently held by this block's cell-state arrays
        (functional plane + whichever error-plane arrays are
        materialized)."""
        total = self._packed.nbytes
        for arr in (self._vth, self._mlc_states, self._mlc_msb):
            if arr is not None:
                total += arr.nbytes
        return total

    def wordline_esp_extra(self, wordline: int) -> float:
        return self.metadata[wordline].esp_extra

    def note_read(self, count: int = 1) -> None:
        self.reads_since_erase += count


@dataclass
class PlaneArray:
    """Lazy map from block address to materialized :class:`BlockArray`."""

    geometry: ChipGeometry
    calibration: FlashCalibration = field(default_factory=lambda: DEFAULT_CALIBRATION)
    seed: int = 0
    noise_enabled: bool = True
    _blocks: dict[BlockAddress, BlockArray] = field(default_factory=dict)

    def block(self, address: BlockAddress) -> BlockArray:
        address.validate(self.geometry)
        if address not in self._blocks:
            # Derive a per-block RNG stream so block contents are
            # reproducible regardless of materialization order.
            key = (
                self.seed,
                address.plane,
                address.block,
                address.subblock,
            )
            rng = np.random.default_rng(abs(hash(key)) % (2**63))
            self._blocks[address] = BlockArray(
                self.geometry,
                address,
                calibration=self.calibration,
                rng=rng,
                noise_enabled=self.noise_enabled,
            )
        return self._blocks[address]

    def materialized(self) -> tuple[BlockAddress, ...]:
        return tuple(sorted(self._blocks))

    def content_version(self) -> tuple[int, int]:
        """Aggregate content stamp of every materialized block.

        Returns ``(n_blocks, sum of block layout_versions)``.  Both
        components are monotonic -- blocks are only ever added, and
        each block's ``layout_version`` only ever grows (bumped on
        every program/erase) -- so any mutation anywhere in the plane
        strictly changes the stamp.  Caches of *sensed data* (the
        query engine's cross-window :class:`ResultCache`) compare this
        stamp to detect that cell contents may have moved underneath
        them; it is the plane-level face of the per-block
        ``layout_version`` contract that the chip's batch gather cache
        already revalidates against.
        """
        return (
            len(self._blocks),
            sum(block.layout_version for block in self._blocks.values()),
        )

    def __contains__(self, address: BlockAddress) -> bool:
        return address in self._blocks
