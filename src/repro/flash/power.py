"""Power and energy model of chip operations.

Anchors (paper Section 5.2, Figure 14 -- all values normalized to the
average power of a regular page read):

* inter-block MWS on 2 blocks: +34% over a regular read;
* inter-block MWS on 4 blocks: ~+80% over a regular read;
* erase power sits just above the 4-block MWS level ("the power
  consumption of inter-block MWS remains lower than that of an erase
  operation" until 4 blocks);
* the 4-block MWS *energy* is ~53% below four individual reads
  (80% more power for 3.3% more time than one read, replacing four).

Intra-block MWS draws slightly *less* than a regular read because the
extra target wordlines receive VREF instead of the much larger VPASS
(Section 4.1).

Absolute scale: we anchor the regular-read power at 45 mW per die,
typical for planar reads of this chip class; all system-level energy
ratios depend only on the relative factors plus this single scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PowerParameters:
    """Power constants; relative factors are normalized to a read."""

    read_power_mw: float = 45.0
    #: Fitted to Fig. 14: p(n) = 1 + 0.34 * (n-1)^0.78 gives
    #: p(2) = 1.34 and p(4) = 1.80.
    inter_block_coeff: float = 0.34
    inter_block_exponent: float = 0.78
    #: VREF on extra wordlines replaces VPASS, shaving a little power.
    intra_block_saving_per_wordline: float = 0.0006
    erase_factor: float = 1.85
    program_factor: float = 1.55


@dataclass
class PowerModel:
    """Power/energy calculator for chip operations."""

    params: PowerParameters = field(default_factory=PowerParameters)

    def read_power_factor(self) -> float:
        return 1.0

    def inter_block_mws_power_factor(self, n_blocks: int) -> float:
        if n_blocks < 1:
            raise ValueError("n_blocks must be >= 1")
        p = self.params
        return 1.0 + p.inter_block_coeff * (n_blocks - 1) ** p.inter_block_exponent

    def intra_block_mws_power_factor(self, n_wordlines: int) -> float:
        if n_wordlines < 1:
            raise ValueError("n_wordlines must be >= 1")
        p = self.params
        factor = 1.0 - p.intra_block_saving_per_wordline * (n_wordlines - 1)
        return max(factor, 0.5)

    def mws_power_factor(self, n_wordlines: int, n_blocks: int = 1) -> float:
        """Combined MWS power: inter-block growth times the (small)
        intra-block saving of the per-string wordline count."""
        if n_blocks < 1 or n_wordlines < n_blocks:
            raise ValueError("need at least one wordline per block")
        worst_per_string = -(-n_wordlines // n_blocks)
        return self.inter_block_mws_power_factor(
            n_blocks
        ) * self.intra_block_mws_power_factor(worst_per_string)

    def erase_power_factor(self) -> float:
        return self.params.erase_factor

    def program_power_factor(self) -> float:
        return self.params.program_factor

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------

    def energy_nj(self, power_factor: float, duration_us: float) -> float:
        """Energy of an operation in nanojoules."""
        if duration_us < 0:
            raise ValueError("duration must be >= 0")
        return self.params.read_power_mw * power_factor * duration_us

    def read_energy_nj(self, t_read_us: float) -> float:
        return self.energy_nj(1.0, t_read_us)

    def mws_energy_nj(
        self, n_wordlines: int, n_blocks: int, t_mws_us: float
    ) -> float:
        return self.energy_nj(
            self.mws_power_factor(n_wordlines, n_blocks), t_mws_us
        )
