"""Calibration constants for the NAND flash reliability model.

Every constant is annotated with the paper anchor it serves.  The
anchors (all from the Flash-Cosmos paper, MICRO 2022):

* Fig. 8(a) left  -- SLC + randomization: RBER grows from ~2e-4
  (fresh) to ~2e-3 (10K P/E cycles, 1-year retention).
* Fig. 8(a) right -- disabling randomization raises average SLC RBER
  by 1.91x.
* Fig. 8(b)       -- MLC + randomization best case 8.6e-4; MLC without
  randomization worst case 1.6e-2 (the "RBER range across the two
  plots"); disabling randomization raises average MLC RBER by 4.92x;
  MLC reaches up to 4x the RBER of SLC.
* Fig. 11         -- ESP: worst-block RBER ~4.5e-3 at tESP = tPROG
  (equals regular SLC, no randomization, 10K PEC, 1-year retention);
  an order-of-magnitude median reduction at tESP = 1.6x tPROG; zero
  observed errors (statistical RBER < 2.07e-12) at tESP >= 1.9x tPROG.

The model is mechanistic -- retention loss, program interference,
read disturb and P/E wear shift and widen Gaussian V_TH states, and
RBER is tail mass across the read reference -- but the constants are
fitted to the anchors above (``tools/tune_calibration.py`` performs the
fit and the calibration tests in ``tests/flash/test_calibration.py``
pin the result).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SlcErrorConstants:
    """Constants of the SLC-mode reliability model (volts unless noted).

    Regular SLC-mode programming is fast and coarse, so the programmed
    state is *wide*; ESP narrows and raises it (paper Section 4.2).
    """

    # Nominal state layout.  The erased state is deep and fairly tight;
    # the programmed state is wide because regular SLC programming uses
    # a large ISPP step for speed.
    erased_mean: float = -2.8
    erased_sigma: float = 0.32
    programmed_mean: float = 2.5
    programmed_sigma: float = 0.75
    read_ref: float = 0.0

    # Retention loss: programmed cells drift down by
    # k_ret * (1 + w_ret * pec) * log1p(months / tau_ret_months).
    k_ret: float = 0.0223
    w_ret: float = 2.0e-4
    tau_ret_months: float = 2.0

    # Program interference + disturbance: erased cells drift up by
    # d_int0 * (1 + w_int * pec), plus a worst-case-pattern surcharge
    # k_pat * (1 + w_pat * pec) when data randomization is disabled
    # (Section 2.2: randomization exists to avoid worst-case patterns).
    d_int0: float = 0.83
    w_int: float = 6.0e-5
    k_pat: float = 0.25
    w_pat: float = 1.0e-4

    # Read disturb: erased cells drift up by k_rd * log1p(reads).
    k_rd: float = 0.02

    # P/E wear widens both distributions: sigma *= (1 + w_sig * pec).
    w_sig: float = 1.5e-5

    # ESP knobs, parameterized by extra = tESP / tPROG - 1 in [0, 1]:
    #   programmed mean   += esp_target_raise * extra**esp_gamma
    #   programmed sigma  *= 1 - esp_sigma_shrink * extra  (smaller dV_ISPP)
    #   read reference    += esp_ref_slope * extra**esp_gamma
    # The superlinear exponent reflects that the early extra budget
    # completes the coarse pass; only beyond that do the fine,
    # raised-V_TGT steps engage.  Solved jointly from Fig. 11's two
    # anchors: ~10x median reduction at tESP = 1.6x tPROG and
    # RBER < 2.07e-12 (worst block) at tESP >= 1.9x tPROG.
    esp_target_raise: float = 2.62
    esp_sigma_shrink: float = 0.80
    esp_ref_slope: float = 3.37
    esp_gamma: float = 5.1


@dataclass(frozen=True)
class MlcErrorConstants:
    """Constants of the MLC-mode reliability model.

    MLC packs four states into the window, shrinking every margin
    (Figure 5(b)); programming is finer (two-step) so the per-state
    sigma is tighter than regular SLC, but the margins shrink faster
    than the sigmas -- the source of the up-to-4x RBER penalty.
    """

    erased_mean: float = -2.5
    top_mean: float = 3.2
    n_levels: int = 4
    erased_sigma: float = 0.315
    programmed_sigma: float = 0.285

    # Retention scales with state height (higher states leak more).
    k_ret: float = 0.035
    w_ret: float = 2.0e-4
    tau_ret_months: float = 2.0

    # Interference scales with (1 - state height): low states are the
    # most vulnerable to upward drift.
    d_int0: float = 0.10
    w_int: float = 6.0e-5
    k_pat: float = 0.21
    w_pat: float = 5.0e-5

    k_rd: float = 0.012
    w_sig: float = 1.5e-5


@dataclass(frozen=True)
class TlcErrorConstants:
    """TLC layout (8 states).  Used for capacity/latency accounting and
    wear cycling in the characterization harness; the paper reports no
    TLC RBER anchors, so these constants are extrapolated from MLC."""

    erased_mean: float = -2.5
    top_mean: float = 3.6
    n_levels: int = 8
    erased_sigma: float = 0.24
    programmed_sigma: float = 0.17

    k_ret: float = 0.030
    w_ret: float = 2.0e-4
    tau_ret_months: float = 2.0
    d_int0: float = 0.06
    w_int: float = 1.0e-4
    k_pat: float = 0.10
    w_pat: float = 5.0e-5
    k_rd: float = 0.008
    w_sig: float = 1.5e-5


@dataclass(frozen=True)
class BlockQualityConstants:
    """Process variation across blocks (paper Figure 11 plots worst,
    median, and best block).  Modeled as a sigma multiplier drawn from
    a clipped lognormal; the named quantiles pin the figure's series."""

    sigma_multiplier_best: float = 0.88
    sigma_multiplier_median: float = 1.00
    sigma_multiplier_worst: float = 1.08
    lognormal_sigma: float = 0.05


@dataclass(frozen=True)
class FlashCalibration:
    """All reliability-model constants, grouped by programming mode."""

    slc: SlcErrorConstants = field(default_factory=SlcErrorConstants)
    mlc: MlcErrorConstants = field(default_factory=MlcErrorConstants)
    tlc: TlcErrorConstants = field(default_factory=TlcErrorConstants)
    quality: BlockQualityConstants = field(default_factory=BlockQualityConstants)

    #: RBER below which the paper's validation (4.83e11 bits, zero
    #: observed errors) would statistically expect no errors
    #: (Section 5.2: "statistical RBER of ESP is lower than 2.07e-12").
    zero_error_rber: float = 2.07e-12


DEFAULT_CALIBRATION = FlashCalibration()
