"""NAND flash chip facade.

``NandFlashChip`` ties the substrate together: plane arrays hold the
packed functional bits and V_TH state, per-plane latch banks implement
the sensing/cache latch protocol, the sensing engine evaluates string
conductance, and the timing/power models account for every operation.

The chip exposes the three command families the paper's Section 6.2
defines (MWS with ISCM flags, ESP programming, latch XOR) plus the
regular read/program/erase commands, so the Flash-Cosmos core and the
ParaBit baseline drive it exactly like firmware drives a real chip.

With the default ``packed=True`` the error-free functional data path
stays bit-packed end to end: senses reduce ``uint64`` word rows, the
latches accumulate words, and ``output_cache_words`` hands packed
buffers to the controller; unpacking happens only at external result
boundaries.  ``packed=False`` keeps the one-byte-per-bit evaluation
for equivalence testing.  Error injection always evaluates through
the V_TH plane, unchanged.

``execute_sense_batch`` is the chip half of the batched data plane:
it resolves and validates many MWS commands at once (memoized per
command, revalidated via block ``layout_version``) and evaluates all
their senses in one vectorized pass, leaving the latch protocol and
cost accounting to the batched executor so scalar and batched queues
stay step-for-step identical.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

import numpy as np

from repro.flash.array import BlockArray, PlaneArray
from repro.flash.calibration import DEFAULT_CALIBRATION, FlashCalibration
from repro.flash.errors import (
    BadBlockFault,
    ChipUnavailableError,
    EraseFault,
    ErrorModel,
    OperatingCondition,
    ProgramFault,
    RetryExhaustedError,
)
from repro.flash.geometry import BlockAddress, ChipGeometry, WordlineAddress
from repro.flash.ispp import ProgramMode
from repro.flash.latches import LatchBank
from repro.flash.packing import unpack_words
from repro.flash.power import PowerModel
from repro.flash.randomizer import LfsrRandomizer
from repro.flash.sensing import SensingEngine
from repro.flash.timing import TimingModel


@dataclass(frozen=True)
class IscmFlags:
    """The ISCM command slot of the MWS command (Figure 15): four
    independent feature flags a flash controller can toggle."""

    inverse: bool = False
    init_sense: bool = True
    init_cache: bool = True
    transfer: bool = True


@dataclass
class ChipCounters:
    """Operation and cost accounting for one chip."""

    senses: int = 0
    wordlines_sensed: int = 0
    programs: int = 0
    erases: int = 0
    transfers_out: int = 0
    busy_us: float = 0.0
    energy_nj: float = 0.0

    def charge(self, duration_us: float, energy_nj: float) -> None:
        self.busy_us += duration_us
        self.energy_nj += energy_nj


class NandFlashChip:
    """Functional model of one NAND flash die."""

    def __init__(
        self,
        geometry: ChipGeometry,
        *,
        calibration: FlashCalibration | None = None,
        condition: OperatingCondition | None = None,
        seed: int = 0,
        inject_errors: bool = True,
        packed: bool = True,
    ) -> None:
        self.geometry = geometry
        self.calibration = calibration or DEFAULT_CALIBRATION
        self.condition = condition or OperatingCondition()
        #: The packed plane only pays off when senses are error-free
        #: (word-wide conduction).  Error injection evaluates per cell
        #: through V_TH and produces unpacked bits, so packing the
        #: latch pipeline there would just add per-sense conversions.
        self.packed = packed and not inject_errors
        self.error_model = ErrorModel(self.calibration)
        self.timing = TimingModel()
        self.power = PowerModel()
        self.randomizer = LfsrRandomizer()
        self.counters = ChipCounters()
        self.plane_array = PlaneArray(
            geometry,
            calibration=self.calibration,
            seed=seed,
            noise_enabled=inject_errors,
        )
        self.sensing = SensingEngine(
            self.error_model,
            rng=np.random.default_rng(seed + 0x5EED),
            inject_errors=inject_errors,
            packed=self.packed,
        )
        self.latches = {
            plane: LatchBank(geometry.page_size_bits, packed=self.packed)
            for plane in range(geometry.planes_per_die)
        }
        #: Runtime-tunable parameters (the SET FEATURE command).
        self._features: dict[str, float] = {}
        #: Per-randomization-flag variants of the ambient condition
        #: (avoids a dataclass replace per sense -- hot path).
        self._condition_variants: dict[bool, OperatingCondition] = {}
        #: (n_wordlines, n_blocks) -> (duration_us, energy_nj) for MWS
        #: senses; the models are pure in these counts -- hot path.
        #: Reads stay lock-free (dict.get is atomic under the GIL and
        #: entries are immutable pure derivations); the size-bounded
        #: evict+insert runs under ``_memo_lock`` so concurrent
        #: per-chip dispatch (``QueryEngine.execute_tasks`` workers)
        #: can never interleave a clear with a partial insert.
        self._mws_cost_cache: dict[tuple[int, int], tuple[float, float]] = {}
        #: Guards the evict+insert sections of the memo caches below.
        #: Chip *state* (latches, counters, plane array) is not locked
        #: here: the executor layer confines each chip to one worker
        #: thread at a time (``MwsExecutor.lock``).
        self._memo_lock = threading.Lock()
        #: Optional fault-injection plane (:mod:`repro.flash.faults`):
        #: ``fault_injector`` draws program/erase failures and owns the
        #: persistent bad-block set checked in ``_resolve_targets``;
        #: ``fault_chip_id`` keys this chip's deterministic RNG stream
        #: and counters inside the (possibly shared) injector.  ``None``
        #: (the default) leaves every hot path untouched.
        self.fault_injector = None
        self.fault_chip_id = 0
        #: Permanent chip loss: an offline die rejects every operation
        #: with :class:`~repro.flash.errors.ChipUnavailableError` --
        #: the primitive the redundancy plane's kill/reconstruct/
        #: rebuild loop is built on (``SmallSsd.kill_chip``).  Distinct
        #: from quarantine (a breaker state that can half-open): an
        #: offline chip never serves again.
        self.offline = False
        #: MwsCommand -> (stacked operand-row snapshot, group-size
        #: profile, (block, n_wordlines) read-accounting pairs,
        #: per-block layout versions) for the batched path.  Commands
        #: are immutable value objects the engine's bound-plan cache
        #: reuses across windows and block objects are stable once
        #: materialized, so resolution (address validation, plane
        #: check, block lookup), the metadata scan, and the row gather
        #: run once per distinct command -- revalidated only when a
        #: target block's ``layout_version`` moves (program/erase,
        #: which are the only writers of the packed plane).
        self._resolved_targets: dict[object, tuple] = {}
        #: id(commands) -> (pinned command list, vref_offset,
        #: force_vth, prepared V_TH schedule, (block, layout_version)
        #: revalidation pairs) for the batched error plane.  The
        #: executor's layout memo hands back the same command-list
        #: object for a repeated window, so identity is the window
        #: key; pinning the list keeps the id unique among live
        #: objects.  Entries revalidate per-block ``layout_version``
        #: and are dropped wholesale when the ambient condition or
        #: fault injector changes (both invalidate resolved
        #: conditions/bad-block checks).
        self._vth_schedules: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Environment control (test-mode features)
    # ------------------------------------------------------------------

    def set_condition(self, condition: OperatingCondition) -> None:
        """Set the ambient stress condition (retention age, chip-level
        P/E floor, block quality) applied to subsequent senses."""
        self.condition = condition
        self._condition_variants.clear()
        with self._memo_lock:
            self._vth_schedules.clear()

    def attach_fault_injector(self, injector, chip_id: int = 0) -> None:
        """Attach a :class:`~repro.flash.faults.FaultInjector` (or
        detach with ``None``).  ``chip_id`` identifies this chip inside
        the injector's per-chip RNG streams and counters.  The batched
        command memo is dropped: its entries were resolved before the
        bad-block set existed."""
        self.fault_injector = injector
        self.fault_chip_id = chip_id
        with self._memo_lock:
            self._resolved_targets.clear()
            self._vth_schedules.clear()

    def cycle_block(self, address: BlockAddress, pe_cycles: int) -> None:
        """Wear a block to ``pe_cycles`` program/erase cycles (the
        characterization harness uses this instead of physically
        cycling, as the testbed does with repeated program/erase)."""
        block = self.plane_array.block(address)
        if pe_cycles < block.pe_cycles:
            raise ValueError("cannot un-wear a block")
        block.pe_cycles = pe_cycles

    # ------------------------------------------------------------------
    # Regular commands
    # ------------------------------------------------------------------

    def _check_online(self) -> None:
        if self.offline:
            raise ChipUnavailableError(
                f"chip {self.fault_chip_id} is offline",
                chip=self.fault_chip_id,
            )

    def erase_block(self, address: BlockAddress) -> float:
        self._check_online()
        inj = self.fault_injector
        duration = self.timing.t_erase_us()
        energy = self.power.energy_nj(
            self.power.erase_power_factor(), duration
        )
        if inj is not None:
            if inj.is_bad_block(self.fault_chip_id, address):
                raise BadBlockFault(
                    f"erase targeted bad block {address}", address=address
                )
            if inj.draw_erase_fault(self.fault_chip_id):
                # The attempt still occupies the die for its modeled
                # duration before the chip reports failure.
                self.counters.charge(duration, energy)
                raise EraseFault(f"erase failed at {address}")
        block = self.plane_array.block(address)
        block.erase()
        self.counters.erases += 1
        self.counters.charge(duration, energy)
        return duration

    def page_index(self, address: WordlineAddress) -> int:
        g = self.geometry
        block_linear = (
            address.plane * g.blocks_per_plane + address.block
        ) * g.subblocks_per_block + address.subblock
        return block_linear * g.wordlines_per_string + address.wordline

    def program_page(
        self,
        address: WordlineAddress,
        data_bits: np.ndarray,
        *,
        mode: ProgramMode = ProgramMode.SLC,
        esp_extra: float = 0.0,
        randomize: bool = True,
    ) -> float:
        """Program one page.  With ``randomize`` the stored cells hold
        the randomized bits (as a real SSD would); Flash-Cosmos data is
        written with ``randomize=False`` and ``mode=ProgramMode.ESP``.
        ``data_bits`` may be an unpacked 0/1 page or a packed ``uint64``
        word row (the SSD ingest path packs vectors once)."""
        self._check_online()
        address.validate(self.geometry)
        inj = self.fault_injector
        if inj is not None:
            if inj.is_bad_block(self.fault_chip_id, address.block_address):
                raise BadBlockFault(
                    f"program targeted bad block {address.block_address}",
                    address=address,
                )
            if inj.draw_program_fault(self.fault_chip_id):
                duration = self.timing.t_program_us(mode.value, esp_extra)
                self.counters.charge(
                    duration,
                    self.power.energy_nj(
                        self.power.program_power_factor(), duration
                    ),
                )
                raise ProgramFault(f"program failed at {address}")
        data = np.asarray(data_bits)
        if data.dtype == np.uint64:
            if randomize:
                # The keystream is cached as zero-padded uint64 words,
                # so packed writes randomize word-wide in place of the
                # old unpack round-trip (padding ones survive the XOR).
                data = self.randomizer.randomize(
                    data,
                    self.page_index(address),
                    n_bits=self.geometry.page_size_bits,
                )
        else:
            data = np.asarray(data, dtype=np.uint8)
            if randomize:
                data = self.randomizer.randomize(
                    data, self.page_index(address)
                )
        block = self.plane_array.block(address.block_address)
        block.program(
            address.wordline,
            data,
            mode=mode,
            esp_extra=esp_extra,
            randomized=randomize,
        )
        meta = block.metadata[address.wordline]
        meta.randomizer_page_index = (
            self.page_index(address) if randomize else None
        )
        duration = self.timing.t_program_us(mode.value, esp_extra)
        energy = self.power.energy_nj(
            self.power.program_power_factor(), duration
        )
        self.counters.programs += 1
        self.counters.charge(duration, energy)
        return duration

    def read_page(
        self, address: WordlineAddress, *, inverse: bool = False
    ) -> np.ndarray:
        """Regular page read through the latch pipeline, returning the
        de-randomized data when the page was stored randomized."""
        self.execute_sense(
            [(address.block_address, (address.wordline,))],
            IscmFlags(inverse=inverse),
        )
        block = self.plane_array.block(address.block_address)
        meta = block.metadata[address.wordline]
        if not (meta.programmed and meta.randomized):
            return self.output_cache(address.plane)
        # De-randomization XORs the same keystream; for an inverse
        # read the complement survives (NOT(a^k) ^ k == NOT a).
        # Copyback destinations keep the source's keystream index.
        index = (
            meta.randomizer_page_index
            if meta.randomizer_page_index is not None
            else self.page_index(address)
        )
        page_bits = self.geometry.page_size_bits
        if self.packed:
            # Word-wise de-randomization on the packed C-latch output:
            # the single unpack stays at this external boundary.
            words = self.randomizer.derandomize(
                self.output_cache_words(address.plane),
                index,
                n_bits=page_bits,
            )
            return unpack_words(words, page_bits)
        return self.randomizer.derandomize(
            self.output_cache(address.plane), index
        )

    def program_page_mlc(
        self,
        address: WordlineAddress,
        lsb_bits: np.ndarray,
        msb_bits: np.ndarray,
        *,
        randomize: bool = True,
    ) -> float:
        """Program one wordline in MLC mode (LSB + MSB pages).

        Operands for in-flash computation may live in MLC LSB pages:
        their read mechanism equals an SLC read apart from the
        reference voltage (Section 9, footnote 15) -- at ParaBit-level
        reliability, since MLC cannot reach ESP margins."""
        self._check_online()
        address.validate(self.geometry)
        lsb = np.asarray(lsb_bits, dtype=np.uint8)
        msb = np.asarray(msb_bits, dtype=np.uint8)
        if randomize:
            index = self.page_index(address)
            lsb = self.randomizer.randomize(lsb, index)
            msb = self.randomizer.randomize(msb, index ^ 0x5A5A)
        block = self.plane_array.block(address.block_address)
        block.program_mlc(address.wordline, lsb, msb, randomized=randomize)
        meta = block.metadata[address.wordline]
        meta.randomizer_page_index = (
            self.page_index(address) if randomize else None
        )
        duration = self.timing.t_program_us("mlc")
        energy = self.power.energy_nj(
            self.power.program_power_factor(), duration
        )
        self.counters.programs += 1
        self.counters.charge(duration, energy)
        return duration

    def read_msb_page(self, address: WordlineAddress) -> np.ndarray:
        """MSB-page read of an MLC wordline (two references)."""
        address.validate(self.geometry)
        block = self.plane_array.block(address.block_address)
        condition = self._effective_condition([(block, (address.wordline,))])
        outcome = self.sensing.read_msb_wordline(
            block, address.wordline, condition
        )
        duration = 2 * self.timing.t_read_us  # two sensing passes
        self.counters.senses += 2
        self.counters.wordlines_sensed += 1
        self.counters.charge(duration, self.power.energy_nj(1.0, duration))
        raw = outcome.bits
        meta = block.metadata[address.wordline]
        if meta.programmed and meta.randomized:
            raw = self.randomizer.derandomize(
                raw, self.page_index(address) ^ 0x5A5A
            )
        return raw

    # ------------------------------------------------------------------
    # Firmware/test-mode features the paper builds on
    # ------------------------------------------------------------------

    def set_feature(self, feature: str, value: float) -> None:
        """SET FEATURE command (Section 4.2): tune operating
        parameters at runtime, as real chips allow for post-fabrication
        optimization.  Supported features: 'esp_extra_default' and
        'vref_offset'."""
        if feature == "esp_extra_default":
            if not 0.0 <= value <= 1.0:
                raise ValueError("esp_extra_default must be in [0, 1]")
            self._features[feature] = value
        elif feature == "vref_offset":
            if not -1.0 <= value <= 1.0:
                raise ValueError("vref_offset must be in [-1, 1] V")
            self._features[feature] = value
        else:
            raise ValueError(f"unknown feature {feature!r}")

    def get_feature(self, feature: str) -> float:
        try:
            return self._features[feature]
        except KeyError:
            raise ValueError(f"unknown feature {feature!r}") from None

    def erase_verify(self, address: BlockAddress) -> bool:
        """Erase verify (Section 4.1): simultaneously apply VREF to
        every wordline of the block -- an intra-block MWS over all
        wordlines -- and check that every bitline conducts.  This is
        the pre-existing chip capability MWS builds on."""
        address.validate(self.geometry)
        all_wordlines = tuple(range(self.geometry.wordlines_per_string))
        self.execute_sense([(address, all_wordlines)], IscmFlags())
        return bool(self.output_cache(address.plane).all())

    def copyback(
        self, source: WordlineAddress, destination: WordlineAddress
    ) -> None:
        """Copyback (Section 2.1, footnote 3): move a page to another
        page of the same plane without off-chip transfer, via an
        inverse read into the latch and a program from it.

        Faithfully models the operation's known hazard: raw cells move
        verbatim, so (i) any accumulated bit errors propagate (no ECC
        scrub) and (ii) randomized data keeps the *source* page's
        keystream, which the firmware must remember."""
        self._check_online()
        source.validate(self.geometry)
        destination.validate(self.geometry)
        if source.plane != destination.plane:
            raise ValueError("copyback cannot cross planes")
        src_block = self.plane_array.block(source.block_address)
        src_meta = src_block.metadata[source.wordline]
        if src_meta.mode not in (ProgramMode.SLC, ProgramMode.ESP):
            raise NotImplementedError("copyback modeled for SLC-family pages")
        # Inverse read into the latch; the program path re-inverts.
        self.execute_sense(
            [(source.block_address, (source.wordline,))],
            IscmFlags(inverse=True),
        )
        raw = 1 - self.output_cache(source.plane)
        dst_block = self.plane_array.block(destination.block_address)
        dst_block.program(
            destination.wordline,
            raw.astype(np.uint8),
            mode=src_meta.mode,
            esp_extra=src_meta.esp_extra,
            randomized=src_meta.randomized,
        )
        dst_meta = dst_block.metadata[destination.wordline]
        dst_meta.randomizer_page_index = (
            src_meta.randomizer_page_index
            if src_meta.randomizer_page_index is not None
            else (self.page_index(source) if src_meta.randomized else None)
        )
        duration = self.timing.t_program_us(
            src_meta.mode.value, src_meta.esp_extra
        )
        self.counters.programs += 1
        self.counters.charge(
            duration,
            self.power.energy_nj(self.power.program_power_factor(), duration),
        )

    def read_page_with_retry(
        self,
        address: WordlineAddress,
        validate,
        *,
        vref_offsets: tuple[float, ...] = (0.0, -0.1, -0.2, -0.3, 0.1),
    ) -> tuple[np.ndarray, int]:
        """Read-retry: re-sense with shifted VREF until ``validate``
        accepts the page.  Retention drift moves programmed cells
        down, so negative offsets recover retention-degraded data --
        the standard firmware mitigation the paper cites ([64]).

        Returns (bits, retries).  Raises
        :class:`~repro.flash.errors.RetryExhaustedError` (a
        ``RuntimeError`` subclass) when no offset validates, carrying
        the failing page address and the attempted offsets."""
        block = self.plane_array.block(address.block_address)
        meta = block.metadata[address.wordline]
        # Everything offset-independent is resolved once: the sense
        # target list, the ISCM flags, the feature-configured base
        # offset, and the randomizer keystream index.
        targets = [(address.block_address, (address.wordline,))]
        iscm = IscmFlags()
        base_offset = self._features.get("vref_offset", 0.0)
        derandomize = meta.programmed and meta.randomized
        index = 0
        if derandomize:
            index = (
                meta.randomizer_page_index
                if meta.randomizer_page_index is not None
                else self.page_index(address)
            )
        for retries, offset in enumerate(vref_offsets):
            self.execute_sense(
                targets, iscm, vref_offset=offset + base_offset
            )
            raw = self.output_cache(address.plane)
            if derandomize:
                raw = self.randomizer.derandomize(raw, index)
            if validate(raw):
                return raw, retries
        raise RetryExhaustedError(
            f"read-retry exhausted {len(vref_offsets)} reference offsets",
            address=address,
            vref_offsets=vref_offsets,
            attempts=len(vref_offsets),
        )

    # ------------------------------------------------------------------
    # Flash-Cosmos command set (Figure 15)
    # ------------------------------------------------------------------

    def execute_sense(
        self,
        targets: list[tuple[BlockAddress, tuple[int, ...]]],
        iscm: IscmFlags,
        *,
        vref_offset: float = 0.0,
        force_vth: bool = False,
    ) -> None:
        """Execute one MWS command: sense all targeted wordlines in a
        single operation and drive the latch protocol per the ISCM
        flags.  A regular read is the one-block/one-wordline case.
        ``vref_offset`` shifts VREF (read-retry support); ``force_vth``
        evaluates through the V_TH comparison even on the packed plane
        (degraded-mode recovery -- bit-identical on an error-free chip,
        just slower)."""
        self._check_online()
        plane, blocks = self._resolve_targets(targets)
        bank = self.latches[plane]
        condition = self._effective_condition(blocks)
        outcome = self.sensing.inter_block_mws(
            blocks, condition, vref_offset=vref_offset, force_vth=force_vth
        )

        if iscm.init_cache:
            bank.init_cache()
        if iscm.init_sense:
            bank.init_sense()
        # Hand the latch bank the outcome's native representation:
        # packed words on the fast path, bits on the V_TH path.
        bank.capture(
            outcome.words if self.packed else outcome.bits,
            inverse=iscm.inverse,
        )
        if iscm.transfer:
            bank.transfer_to_cache()

        self.charge_sense(outcome.wordlines_sensed, outcome.blocks_sensed)

    def execute_sense_batch(
        self, commands: list["MwsCommand"]
    ) -> np.ndarray:
        """Evaluate many MWS commands' sensing in one vectorized pass.

        Validates each command exactly as :meth:`execute_sense` (block
        addresses, non-empty wordline sets, single plane per sense) and
        returns one packed ``uint64`` result row per command.  Latch
        protocol and cost counters are deliberately *not* driven here:
        the batched executor (:class:`repro.core.mws.MwsExecutor`)
        replays both per plan -- latches via
        :meth:`~repro.flash.latches.LatchBank.capture_batch`, counters
        via :meth:`charge_sense`/:meth:`charge_xor` in scalar order --
        so a batched queue stays step-for-step identical to scalar
        execution.  Requires the packed error-free plane
        (``self.packed``); error injection keeps the per-sense V_TH
        path.
        """
        self._check_online()
        if not self.packed:
            raise RuntimeError(
                "execute_sense_batch requires the packed error-free "
                "plane; use execute_sense per command instead"
            )
        resolved = self._resolved_targets
        stacks: list[np.ndarray] = []
        profiles: list[tuple[int, ...]] = []
        for command in commands:
            cached = resolved.get(command)
            if cached is not None:
                stack, profile, reads, versions = cached
                for (block, _), version in zip(reads, versions):
                    if block.layout_version != version:
                        break
                else:
                    for block, n_wordlines in reads:
                        block.note_read(n_wordlines)
                    stacks.append(stack)
                    profiles.append(profile)
                    continue
            _, blocks = self._resolve_targets(command.targets)
            stack, profile, reads = self.sensing.gather_sense(blocks)
            for block, n_wordlines in reads:
                block.note_read(n_wordlines)
            with self._memo_lock:
                if len(resolved) >= 4096:
                    resolved.clear()
                resolved[command] = (
                    stack,
                    profile,
                    reads,
                    tuple(block.layout_version for block, _ in reads),
                )
            stacks.append(stack)
            profiles.append(profile)
        return self.sensing.sense_batch_stacks(stacks, profiles)

    def execute_sense_batch_vth(
        self,
        commands: list["MwsCommand"],
        *,
        vref_offset: float = 0.0,
        force_vth: bool = False,
    ) -> np.ndarray | None:
        """Evaluate many MWS commands through the V_TH error plane in
        one batched pass.

        The counterpart of :meth:`execute_sense_batch` for chips that
        inject errors (or for ``force_vth`` degraded recovery on the
        packed plane): targets are validated and conditions resolved
        exactly as :meth:`execute_sense`, then the whole window's
        perturb + compare runs through
        :meth:`~repro.flash.sensing.SensingEngine.sense_batch_vth`,
        which keeps the stochastic draw schedule identical to the
        scalar per-sense loop.  Returns an ``(n_commands, page_bits)``
        bit matrix, or ``None`` when any target is MLC-programmed
        (callers fall back to per-sense execution before any draw or
        read-disturb side effect).  Latch protocol and cost counters
        are replayed by the executor, as with the packed batch.

        The prepared schedule -- resolution, stress scalars, stacked
        perturbed-base tensors -- is cached per command-window object
        (the executor's layout memo reuses one list per repeated
        window) and revalidated against each target block's
        ``layout_version``, so steady-state reliability windows only
        pay the draw + compare.  Condition changes and fault-injector
        (re)attachment drop the cache wholesale; a bad-block set is
        immutable per injector and resolution fails before caching,
        so a cached window can never cover a bad block."""
        self._check_online()
        key = id(commands)
        entry = self._vth_schedules.get(key)
        if (
            entry is not None
            and entry[0] is commands
            and entry[1] == vref_offset
            and entry[2] == force_vth
        ):
            for block, version in entry[4]:
                if block.layout_version != version:
                    break
            else:
                return self.sensing.run_batch_vth(entry[3])
        senses = []
        conditions = []
        for command in commands:
            _, blocks = self._resolve_targets(command.targets)
            senses.append(blocks)
            conditions.append(self._effective_condition(blocks))
        schedule = self.sensing.prepare_batch_vth(
            senses,
            conditions,
            vref_offset=vref_offset,
            force_vth=force_vth,
        )
        if schedule is None:
            return None
        with self._memo_lock:
            if len(self._vth_schedules) >= 4096:
                self._vth_schedules.clear()
            self._vth_schedules[key] = (
                commands,
                vref_offset,
                force_vth,
                schedule,
                tuple(
                    (block, block.layout_version)
                    for block, _ in schedule.read_counts
                ),
            )
        return self.sensing.run_batch_vth(schedule)

    def charge_sense(self, n_wordlines: int, n_blocks: int) -> None:
        """Account one MWS sense: operation counters plus the modeled
        duration/energy (memoized per ``(wordlines, blocks)`` shape --
        the timing/power models are pure in these counts).  Shared by
        the scalar path and the batched executor so both produce the
        identical charge sequence."""
        key = (n_wordlines, n_blocks)
        cost = self._mws_cost_cache.get(key)
        if cost is None:
            duration = self.timing.t_mws_us(n_wordlines, n_blocks)
            energy = self.power.mws_energy_nj(
                n_wordlines, n_blocks, duration
            )
            with self._memo_lock:
                # Bounded like the sensing row cache: varied-shape
                # service traffic must not grow the memo without
                # limit.  The models are pure, so a racing recompute
                # stores the identical value.
                if len(self._mws_cost_cache) >= 4096:
                    self._mws_cost_cache.clear()
                self._mws_cost_cache[key] = (duration, energy)
        else:
            duration, energy = cost
        self.counters.senses += 1
        self.counters.wordlines_sensed += n_wordlines
        self.counters.charge(duration, energy)

    def charge_xor(self) -> None:
        """Account one latch XOR: fast relative to sensing; charge a
        token 1 us at read power."""
        self.counters.charge(1.0, self.power.read_energy_nj(1.0))

    def xor_command(self, plane: int) -> None:
        """XOR command (Figure 15(c)): C-latch := S-latch XOR C-latch."""
        bank = self.latches[plane]
        bank.xor_into_cache()
        self.charge_xor()

    def load_cache(self, plane: int, data_bits: np.ndarray) -> None:
        """Load external data into the C-latch (controller-side write
        used before an XOR against stored data).  Accepts packed words
        or an unpacked 0/1 page."""
        self.latches[plane].load_cache(np.asarray(data_bits))

    def output_cache(self, plane: int) -> np.ndarray:
        """Transfer the C-latch contents off-chip (unpacked bits)."""
        self.counters.transfers_out += 1
        return self.latches[plane].cache_data

    def output_cache_words(self, plane: int) -> np.ndarray:
        """Transfer the C-latch contents off-chip as packed ``uint64``
        words (the controller-side query path keeps results packed
        until the external boundary)."""
        self.counters.transfers_out += 1
        return self.latches[plane].cache_words

    def output_sense(self, plane: int) -> np.ndarray:
        """Transfer the S-latch contents off-chip (diagnostics)."""
        return self.latches[plane].sense_data

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _resolve_targets(
        self, targets
    ) -> tuple[int, list[tuple[BlockArray, tuple[int, ...]]]]:
        """Validate one MWS command's target list (non-empty, single
        plane, valid addresses, non-empty wordline sets) and resolve
        block addresses to live arrays.  Shared by the scalar and
        batched sense paths so both reject exactly the same commands.
        """
        if not targets:
            raise ValueError("sense requires at least one target")
        planes = {block.plane for block, _ in targets}
        if len(planes) != 1:
            raise ValueError("one sense operation targets a single plane")
        inj = self.fault_injector
        blocks = []
        for block_addr, wordlines in targets:
            block_addr.validate(self.geometry)
            if not wordlines:
                raise ValueError("empty wordline set for a target block")
            if inj is not None and inj.is_bad_block(
                self.fault_chip_id, block_addr
            ):
                raise BadBlockFault(
                    f"sense targeted bad block {block_addr}",
                    address=block_addr,
                )
            blocks.append(
                (self.plane_array.block(block_addr), tuple(wordlines))
            )
        return planes.pop(), blocks

    def _effective_condition(self, blocks) -> OperatingCondition:
        """Ambient condition refined with per-wordline metadata: data
        stored without randomization suffers the worst-case-pattern
        interference surcharge (Section 2.2)."""
        randomized = all(
            block.metadata[wl].randomized
            for block, wordlines in blocks
            for wl in wordlines
        )
        if randomized == self.condition.randomized:
            return self.condition
        cached = self._condition_variants.get(randomized)
        if cached is None:
            cached = replace(self.condition, randomized=randomized)
            self._condition_variants[randomized] = cached
        return cached

    def stored_bits(self, address: WordlineAddress) -> np.ndarray:
        """Ground truth as stored in the cells (post-randomization)."""
        block = self.plane_array.block(address.block_address)
        return block.stored_bits(address.wordline)

    def logical_bits(self, address: WordlineAddress) -> np.ndarray:
        """Ground truth as the user wrote it (pre-randomization)."""
        raw = self.stored_bits(address)
        block = self.plane_array.block(address.block_address)
        meta = block.metadata[address.wordline]
        if meta.programmed and meta.randomized:
            raw = self.randomizer.derandomize(raw, self.page_index(address))
        return raw
