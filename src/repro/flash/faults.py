"""Deterministic, seedable fault injection for the flash substrate.

The serving stack above this module assumes every sense, program, and
erase succeeds; reliability work needs the opposite.  A
:class:`FaultInjector` attached to a chip (or to every chip through
``SmallSsd(fault_injector=...)``) injects four fault classes:

* **transient sense faults** -- a multi-wordline sense reports failure
  (the attempt still costs real chip time; a retry may succeed),
* **program / erase failures** -- the operation raises after charging
  its attempted time,
* **stuck bad blocks** -- any sense or program touching a listed block
  raises :class:`~repro.flash.errors.BadBlockFault` (persistent),
* **chip stalls** -- an attempt is delayed by ``stall_us`` of
  *simulated* time before it starts (charged as recovery time by the
  engine, never wall clock).

Determinism is the load-bearing property: every random draw comes from
a per-chip ``np.random.default_rng((seed, chip))`` stream, and the
query engine only draws inside the owning chip's drain (under the
executor lock).  The draw sequence per chip is therefore a pure
function of that chip's attempt sequence -- identical at any worker
count, which is what lets the chaos property suites compare runs at
``workers=1`` and ``workers=4`` bit for bit.

An injector whose every rate is zero and whose bad-block set is empty
is *inactive* (:attr:`FaultInjector.active` is ``False``): the chip and
engine skip all hooks, so the fault-free path stays float-exact versus
a build with no injector at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.flash.geometry import BlockAddress

__all__ = ["FaultConfig", "FaultInjector", "RecoveryPolicy"]


@dataclass(frozen=True)
class FaultConfig:
    """Rates and targets for one injection campaign.

    ``sense_fault_rate`` applies to every chip unless overridden per
    chip in ``chip_sense_fault_rates``.  ``bad_blocks`` lists
    persistently bad blocks as ``(chip, plane, block, subblock)``
    tuples.  All rates are per-attempt probabilities in [0, 1].
    """

    seed: int = 0
    sense_fault_rate: float = 0.0
    chip_sense_fault_rates: Mapping[int, float] = field(
        default_factory=dict
    )
    program_fault_rate: float = 0.0
    erase_fault_rate: float = 0.0
    stall_rate: float = 0.0
    stall_us: float = 25.0
    bad_blocks: tuple = ()

    def __post_init__(self) -> None:
        rates = [
            self.sense_fault_rate,
            self.program_fault_rate,
            self.erase_fault_rate,
            self.stall_rate,
            *self.chip_sense_fault_rates.values(),
        ]
        for rate in rates:
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate {rate} outside [0, 1]")
        if self.stall_us < 0.0:
            raise ValueError("stall_us must be >= 0")


class FaultInjector:
    """Draws fault decisions from per-chip deterministic streams.

    Thread-safety contract: a chip's draws happen only inside that
    chip's drain (one worker per chip per window), so per-chip RNG
    state and per-chip counters need no locks.  Cross-chip totals are
    computed by summation at read time.
    """

    _COUNTER_KEYS = (
        "sense_faults",
        "program_faults",
        "erase_faults",
        "stalls",
        "bad_block_hits",
    )

    def __init__(self, config: FaultConfig | None = None, **kwargs) -> None:
        self.config = config or FaultConfig(**kwargs)
        if config is not None and kwargs:
            raise TypeError("pass either a FaultConfig or field kwargs")
        self._rngs: dict[int, np.random.Generator] = {}
        self._counts: dict[int, dict[str, int]] = {}
        self._bad_blocks = frozenset(
            (int(c), int(p), int(b), int(s))
            for (c, p, b, s) in self.config.bad_blocks
        )

    # ------------------------------------------------------------------
    # Activity
    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether any hook can ever fire (gates every fast path)."""
        c = self.config
        return bool(
            c.sense_fault_rate > 0.0
            or any(r > 0.0 for r in c.chip_sense_fault_rates.values())
            or c.program_fault_rate > 0.0
            or c.erase_fault_rate > 0.0
            or c.stall_rate > 0.0
            or self._bad_blocks
        )

    def sense_rate(self, chip: int) -> float:
        return self.config.chip_sense_fault_rates.get(
            chip, self.config.sense_fault_rate
        )

    # ------------------------------------------------------------------
    # Per-chip streams
    # ------------------------------------------------------------------

    def _rng(self, chip: int) -> np.random.Generator:
        rng = self._rngs.get(chip)
        if rng is None:
            rng = np.random.default_rng((self.config.seed, chip))
            self._rngs[chip] = rng
            self._counts[chip] = dict.fromkeys(self._COUNTER_KEYS, 0)
        return rng

    def _note(self, chip: int, key: str) -> None:
        self._rng(chip)  # ensure the per-chip slot exists
        self._counts[chip][key] += 1

    # ------------------------------------------------------------------
    # Draws (one per hook call, per-chip stream)
    # ------------------------------------------------------------------

    def draw_stall(self, chip: int) -> float:
        """Simulated stall (us) to charge before the next attempt."""
        if self.config.stall_rate <= 0.0:
            return 0.0
        if self._rng(chip).random() < self.config.stall_rate:
            self._note(chip, "stalls")
            return self.config.stall_us
        return 0.0

    def draw_sense_fault(self, chip: int) -> bool:
        """Whether this sense attempt reports failure."""
        rate = self.sense_rate(chip)
        if rate <= 0.0:
            return False
        if self._rng(chip).random() < rate:
            self._note(chip, "sense_faults")
            return True
        return False

    def draw_program_fault(self, chip: int) -> bool:
        if self.config.program_fault_rate <= 0.0:
            return False
        if self._rng(chip).random() < self.config.program_fault_rate:
            self._note(chip, "program_faults")
            return True
        return False

    def draw_erase_fault(self, chip: int) -> bool:
        if self.config.erase_fault_rate <= 0.0:
            return False
        if self._rng(chip).random() < self.config.erase_fault_rate:
            self._note(chip, "erase_faults")
            return True
        return False

    # ------------------------------------------------------------------
    # Bad blocks (persistent; no randomness)
    # ------------------------------------------------------------------

    def is_bad_block(self, chip: int, address: BlockAddress) -> bool:
        if not self._bad_blocks:
            return False
        key = (chip, address.plane, address.block, address.subblock)
        if key in self._bad_blocks:
            self._note(chip, "bad_block_hits")
            return True
        return False

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def counts(self, chip: int | None = None) -> dict[str, int]:
        """Fault counts for one chip, or totals across all chips."""
        if chip is not None:
            per = self._counts.get(chip)
            return dict(per) if per else dict.fromkeys(self._COUNTER_KEYS, 0)
        totals = dict.fromkeys(self._COUNTER_KEYS, 0)
        for per in self._counts.values():
            for key, value in per.items():
                totals[key] += value
        return totals

    @property
    def faults_injected(self) -> int:
        """Total injected faults of every class, all chips."""
        return sum(self.counts().values())


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the engine responds to a failed sense attempt.

    A failed attempt is retried up to ``max_retries`` times; each retry
    charges ``backoff_us(attempt)`` of *simulated* time (exponential:
    ``backoff_base_us * backoff_factor**(attempt-1)``).  When retries
    exhaust and ``degraded_mode`` is on, the sense re-executes on the
    V_TH read-retry path (correct but slow; ``degraded_extra_senses``
    models the margin-read ladder) before a typed error surfaces.
    """

    max_retries: int = 3
    backoff_base_us: float = 2.0
    backoff_factor: float = 2.0
    degraded_mode: bool = True
    degraded_extra_senses: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_us < 0.0:
            raise ValueError("backoff_base_us must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.degraded_extra_senses < 0:
            raise ValueError("degraded_extra_senses must be >= 0")

    def backoff_us(self, attempt: int) -> float:
        """Backoff charged before retry ``attempt`` (1-based)."""
        if attempt <= 0:
            return 0.0
        return self.backoff_base_us * self.backoff_factor ** (attempt - 1)
