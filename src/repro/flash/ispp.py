"""Incremental Step Pulse Programming (ISPP).

NAND flash programs a wordline by applying a staircase of program
pulses, verifying each cell against its target voltage V_TGT after
every pulse and excluding cells that have reached it (paper
Section 4.2, Figure 10).  The final V_TH distribution width is set by
the step voltage dV_ISPP (a cell overshoots its target by up to one
step) plus pulse noise.

Enhanced SLC-mode Programming (ESP) appends extra ISPP steps with a
*raised* V_TGT and a *reduced* dV_ISPP, which simultaneously moves the
programmed state up and narrows it -- the mechanism behind the Fig. 11
reliability curve.  ``extra`` parameterizes ESP effort as
``tESP / tPROG - 1`` in [0, 1]; 0 is regular SLC-mode programming and
1 is the paper's full-effort ESP (tESP = 400 us = 2 x tPROG).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.flash.calibration import DEFAULT_CALIBRATION, FlashCalibration


class ProgramMode(enum.Enum):
    """Programming modes supported by the chip (Section 8.3: any block
    can be programmed in SLC, MLC or TLC mode; ESP is SLC plus extra
    ISPP effort)."""

    SLC = "slc"
    ESP = "esp"
    MLC = "mlc"
    TLC = "tlc"

    @property
    def bits_per_cell(self) -> int:
        return {"slc": 1, "esp": 1, "mlc": 2, "tlc": 3}[self.value]


@dataclass(frozen=True)
class IsppParameters:
    """Tunable ISPP knobs (exposed by real chips via SET FEATURE).

    ``vpgm_start`` is the first pulse amplitude mapped into the V_TH
    domain; ``delta_v`` is the per-step V_TH increment; ``vtgt`` is the
    verify target.  ``pulse_noise_sigma`` models cell-to-cell program
    variability per pulse.  ``relaxation_sigma`` is post-program charge
    relaxation (detrapping): two-sided Gaussian drift applied after the
    final verify, which is why real programmed distributions have a
    lower tail below the verify floor.
    """

    vpgm_start: float
    delta_v: float
    vtgt: float
    pulse_noise_sigma: float
    relaxation_sigma: float = 0.0
    max_pulses: int = 64

    def __post_init__(self) -> None:
        if self.delta_v <= 0:
            raise ValueError("delta_v must be positive")
        if self.max_pulses < 1:
            raise ValueError("max_pulses must be >= 1")
        if self.pulse_noise_sigma < 0:
            raise ValueError("pulse_noise_sigma must be >= 0")
        if self.relaxation_sigma < 0:
            raise ValueError("relaxation_sigma must be >= 0")


@dataclass(frozen=True)
class ProgramResult:
    """Outcome of programming one wordline."""

    pulses: int
    latency_us: float
    failed_cells: int


class IsppEngine:
    """Simulates ISPP programming over numpy V_TH rows.

    The engine derives its SLC/ESP parameters from the calibration so
    the distributions it *produces* match the distributions the error
    model *assumes* (verified by tests/flash/test_ispp.py).
    """

    def __init__(
        self,
        calibration: FlashCalibration | None = None,
        *,
        t_prog_slc_us: float = 200.0,
    ) -> None:
        self.calibration = calibration or DEFAULT_CALIBRATION
        self.t_prog_slc_us = t_prog_slc_us

    # ------------------------------------------------------------------
    # Parameter derivation
    # ------------------------------------------------------------------

    def slc_parameters(self, esp_extra: float = 0.0) -> IsppParameters:
        """ISPP parameters producing the calibrated SLC/ESP state.

        The distribution right after a verify-based ISPP pass is
        approximately uniform over [vtgt, vtgt + delta_v] convolved
        with pulse noise, floored at vtgt (verify guarantees a
        minimum).  Post-program charge relaxation then spreads it
        two-sidedly -- the dominant share of the final width and the
        origin of the lower tail the error model's Gaussian assumes.
        We budget ~15% of the variance to the ISPP core and ~85% to
        relaxation, and place vtgt so the mean lands on the calibrated
        programmed mean.
        """
        if not 0.0 <= esp_extra <= 1.0:
            raise ValueError("esp_extra must be in [0, 1]")
        c = self.calibration.slc
        target_mean = c.programmed_mean + c.esp_target_raise * esp_extra**c.esp_gamma
        target_sigma = c.programmed_sigma * (1.0 - c.esp_sigma_shrink * esp_extra)
        core_sigma = math.sqrt(0.15) * target_sigma
        relaxation = math.sqrt(0.85) * target_sigma
        # Core split: ~60% of the core variance from step overshoot.
        delta_v = math.sqrt(12.0 * 0.6) * core_sigma
        noise = math.sqrt(0.4) * core_sigma
        vtgt = target_mean - 0.5 * delta_v
        return IsppParameters(
            vpgm_start=c.erased_mean,
            delta_v=delta_v,
            vtgt=vtgt,
            pulse_noise_sigma=noise,
            relaxation_sigma=relaxation,
        )

    def program_latency_us(self, mode: ProgramMode, esp_extra: float = 0.0) -> float:
        """Program latency per Table 1: 200/500/700 us for SLC/MLC/TLC;
        ESP scales SLC latency by (1 + extra), i.e. 400 us at full
        effort (Section 8.3)."""
        base = {
            ProgramMode.SLC: self.t_prog_slc_us,
            ProgramMode.ESP: self.t_prog_slc_us * (1.0 + esp_extra),
            ProgramMode.MLC: self.t_prog_slc_us * 2.5,
            ProgramMode.TLC: self.t_prog_slc_us * 3.5,
        }
        return base[mode]

    # ------------------------------------------------------------------
    # Pulse-level simulation
    # ------------------------------------------------------------------

    def program_row(
        self,
        vth_row: np.ndarray,
        target_mask: np.ndarray,
        params: IsppParameters,
        rng: np.random.Generator,
    ) -> ProgramResult:
        """Program ``target_mask`` cells of ``vth_row`` in place.

        Applies ISPP pulses until every targeted cell verifies at
        ``params.vtgt`` or ``params.max_pulses`` is exhausted.  Returns
        pulse count, a latency estimate proportional to pulses, and the
        number of cells that failed to verify.
        """
        if vth_row.shape != target_mask.shape:
            raise ValueError("vth_row and target_mask must share a shape")
        pending = target_mask & (vth_row < params.vtgt)
        pulses = 0
        while pending.any() and pulses < params.max_pulses:
            count = int(pending.sum())
            noise = rng.standard_normal(count).astype(vth_row.dtype)
            vth_row[pending] += params.delta_v + params.pulse_noise_sigma * noise
            pulses += 1
            pending = target_mask & (vth_row < params.vtgt)
        failed = int(pending.sum())
        # Scale latency so a typical SLC pass costs t_prog_slc_us.
        typical_pulses = max(
            1, math.ceil((params.vtgt - params.vpgm_start) / params.delta_v)
        )
        latency = self.t_prog_slc_us * pulses / typical_pulses
        return ProgramResult(pulses=pulses, latency_us=latency, failed_cells=failed)

    def program_slc(
        self,
        vth_row: np.ndarray,
        data_bits: np.ndarray,
        rng: np.random.Generator,
        *,
        esp_extra: float = 0.0,
        apply_relaxation: bool = True,
    ) -> ProgramResult:
        """Program one SLC/ESP page: bit '0' cells are programmed, bit
        '1' cells stay erased (erased encodes '1'; Section 2.1).
        ``apply_relaxation=False`` models an idealized noise-free chip
        (used when error injection is disabled)."""
        if data_bits.shape != vth_row.shape:
            raise ValueError("data and V_TH row must share a shape")
        target_mask = data_bits == 0
        base = self.slc_parameters(0.0)
        result = self.program_row(vth_row, target_mask, base, rng)
        final_params = base
        if esp_extra > 0.0:
            refine = self.slc_parameters(esp_extra)
            extra_result = self.program_row(vth_row, target_mask, refine, rng)
            final_params = refine
            result = ProgramResult(
                pulses=result.pulses + extra_result.pulses,
                latency_us=self.program_latency_us(ProgramMode.ESP, esp_extra),
                failed_cells=extra_result.failed_cells,
            )
        else:
            result = ProgramResult(
                pulses=result.pulses,
                latency_us=self.program_latency_us(ProgramMode.SLC),
                failed_cells=result.failed_cells,
            )
        # Post-program charge relaxation: applied once, after the last
        # verify, so the final distribution gains its two-sided tail.
        if apply_relaxation and final_params.relaxation_sigma > 0.0:
            count = int(target_mask.sum())
            drift = rng.standard_normal(count).astype(vth_row.dtype)
            vth_row[target_mask] += final_params.relaxation_sigma * drift
        return result
