"""Bit-packed page representation: 64 logical bits per machine word.

The functional data plane of the simulator stores page bits packed
into ``uint64`` words so that bulk bitwise operations -- the whole
point of Flash-Cosmos -- evaluate at machine-word width instead of one
byte per bit (the same trick Buddy-RAM-style simulators use for
in-DRAM bulk bitwise execution).

Conventions shared by every packed consumer:

* Bit ``i`` of a page lives at bit position ``i % 64`` of word
  ``i // 64`` (``np.packbits(..., bitorder="little")`` layout viewed
  through the platform's native ``uint64``).  Pack and unpack use the
  same view, so the representation is self-consistent on any host.
* Pages whose bit count is not a multiple of 64 carry *padding bits*
  in their last word.  Packed **stored pages are padded with ones**
  (the erased state), which makes padding an identity for the AND
  conduction reduce and keeps the S-latch all-ones freshness check
  equivalent to the unpacked protocol.  ``unpack_words`` always
  truncates to the true bit count, so padding never escapes.
"""

from __future__ import annotations

import numpy as np

#: Logical bits per packed word.
WORD_BITS = 64

#: A word with every bit set (the erased / AND-identity pattern).
FULL_WORD = np.uint64(0xFFFF_FFFF_FFFF_FFFF)

#: ``n_bits -> uint64 mask with ones at the padding bit positions``.
_PAD_MASKS: dict[int, np.ndarray] = {}


def words_per_page(n_bits: int) -> int:
    """Packed words needed for a page of ``n_bits`` bits."""
    if n_bits < 1:
        raise ValueError("n_bits must be >= 1")
    return -(-n_bits // WORD_BITS)


def pad_mask(n_bits: int) -> np.ndarray:
    """Word array with ones exactly at the padding bit positions.

    The returned array is a shared cache entry -- callers must not
    mutate it.
    """
    cached = _PAD_MASKS.get(n_bits)
    if cached is None:
        n_words = words_per_page(n_bits)
        bits = np.ones(n_words * WORD_BITS, dtype=np.uint8)
        bits[:n_bits] = 0
        cached = np.packbits(bits, bitorder="little").view(np.uint64)
        cached.setflags(write=False)
        _PAD_MASKS[n_bits] = cached
    return cached


def pack_rows(rows: np.ndarray) -> np.ndarray:
    """Pack a 2-D array of 0/1 page rows into ``uint64`` words.

    Padding bits (positions past ``rows.shape[1]``) are set to one,
    per the module convention.
    """
    rows = np.ascontiguousarray(rows, dtype=np.uint8)
    if rows.ndim != 2:
        raise ValueError("pack_rows expects a 2-D (rows, bits) array")
    n_rows, n_bits = rows.shape
    n_words = words_per_page(n_bits)
    if n_bits == n_words * WORD_BITS:
        padded = rows
    else:
        padded = np.ones((n_rows, n_words * WORD_BITS), dtype=np.uint8)
        padded[:, :n_bits] = rows
    return np.packbits(padded, axis=-1, bitorder="little").view(np.uint64)


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack one 0/1 page (1-D) into ``uint64`` words (ones-padded)."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise ValueError("pack_bits expects a 1-D bit array")
    return pack_rows(bits[np.newaxis, :])[0]


def unpack_rows(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack a 2-D array of packed rows back to 0/1 ``uint8`` pages,
    truncating padding."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError("unpack_rows expects a 2-D (rows, words) array")
    if words.shape[1] != words_per_page(n_bits):
        raise ValueError(
            f"packed page must have {words_per_page(n_bits)} words for "
            f"{n_bits} bits, got {words.shape[1]}"
        )
    flat = np.unpackbits(
        words.view(np.uint8), axis=-1, bitorder="little"
    )
    return flat[:, :n_bits]


def unpack_words(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack one packed page (1-D words) to a 0/1 ``uint8`` array."""
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 1:
        raise ValueError("unpack_words expects a 1-D word array")
    return unpack_rows(words[np.newaxis, :], n_bits)[0]


def invert_words(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Bitwise complement of a packed page, restoring ones-padding."""
    return np.bitwise_not(words) | pad_mask(n_bits)


def ensure_padding(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Return ``words`` with padding bits forced to one (new array
    only when padding exists)."""
    mask = pad_mask(n_bits)
    if not mask.any():
        return words
    return words | mask


def parity_words(rows: np.ndarray, n_bits: int) -> np.ndarray:
    """Word-wise XOR of packed page rows (RAID-5 parity), ones-padded.

    One bulk XOR over the packed plane -- the exact primitive
    Flash-Cosmos computes in-flash -- so parity generation at ingest
    and reconstruction of a lost row (XOR of the survivors + parity)
    both ride the uint64 word pipeline.  XOR of the rows' one-padding
    flips with row count, so the result's padding is re-forced to the
    stored-page convention; data bits below ``n_bits`` are exact.
    """
    rows = np.asarray(rows, dtype=np.uint64)
    if rows.ndim != 2 or rows.shape[0] < 1:
        raise ValueError("parity_words expects a non-empty 2-D row array")
    return ensure_padding(np.bitwise_xor.reduce(rows, axis=0), n_bits)
