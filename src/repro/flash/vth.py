"""Threshold-voltage (V_TH) states and windows.

A flash cell stores data as its threshold voltage.  Reading compares
V_TH against one or more read-reference voltages (VREF); programming
moves V_TH upward with ISPP pulses; erasing returns it to the erased
state (paper Section 2.1, Figure 5).

This module defines the *nominal* state layout for each programming
mode.  The error model (:mod:`repro.flash.errors`) perturbs these
nominal distributions with retention loss, disturbance and
interference; the ISPP engine (:mod:`repro.flash.ispp`) produces them
from programming pulses.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence


class VthState(enum.IntEnum):
    """Named V_TH states.  ERASED encodes '1' in SLC mode."""

    ERASED = 0
    P1 = 1
    P2 = 2
    P3 = 3
    P4 = 4
    P5 = 5
    P6 = 6
    P7 = 7


@dataclass(frozen=True)
class VthLevel:
    """One V_TH state: nominal mean and standard deviation in volts."""

    state: VthState
    mean: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")


@dataclass(frozen=True)
class VthWindow:
    """The V_TH layout of a programming mode.

    ``levels`` are ordered by increasing mean; ``read_refs`` are the
    read-reference voltages separating adjacent levels (one fewer than
    the number of levels).
    """

    levels: tuple[VthLevel, ...]
    read_refs: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.read_refs) != len(self.levels) - 1:
            raise ValueError(
                f"need {len(self.levels) - 1} read refs for "
                f"{len(self.levels)} levels, got {len(self.read_refs)}"
            )
        means = [level.mean for level in self.levels]
        if means != sorted(means):
            raise ValueError("levels must be ordered by increasing mean")
        for i, ref in enumerate(self.read_refs):
            if not self.levels[i].mean < ref < self.levels[i + 1].mean:
                raise ValueError(
                    f"read ref {ref} does not separate levels "
                    f"{self.levels[i].mean} and {self.levels[i + 1].mean}"
                )

    @property
    def bits_per_cell(self) -> int:
        n = len(self.levels)
        bits = n.bit_length() - 1
        if 1 << bits != n:
            raise ValueError(f"level count {n} is not a power of two")
        return bits

    def level(self, state: VthState) -> VthLevel:
        for lvl in self.levels:
            if lvl.state == state:
                return lvl
        raise KeyError(state)

    def margin(self, boundary: int) -> float:
        """Distance between the two state means across ``boundary``."""
        return self.levels[boundary + 1].mean - self.levels[boundary].mean


def gaussian_tail(z: float) -> float:
    """Upper-tail probability Q(z) of the standard normal distribution.

    Implemented with :func:`math.erfc` so the flash model does not
    require scipy at runtime.  Accurate far into the tail (erfc is
    computed with dedicated asymptotics by libm), which matters for the
    ESP zero-error regime (Q(z) ~ 1e-13).
    """
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def gaussian_tail_inverse(q: float) -> float:
    """Inverse of :func:`gaussian_tail` via bisection.

    Only used by calibration tooling and tests; precision of ~1e-9 in z
    is ample.
    """
    if not 0.0 < q < 1.0:
        raise ValueError("q must be in (0, 1)")
    lo, hi = -40.0, 40.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if gaussian_tail(mid) > q:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def misread_probability(
    mean: float, sigma: float, ref: float, *, direction: str
) -> float:
    """Probability that a cell at N(mean, sigma) crosses ``ref``.

    ``direction='below'`` gives P(V_TH < ref) -- a programmed cell read
    as erased; ``direction='above'`` gives P(V_TH > ref) -- an erased
    cell read as programmed.
    """
    z = (ref - mean) / sigma
    if direction == "below":
        return gaussian_tail(-z)
    if direction == "above":
        return gaussian_tail(z)
    raise ValueError(f"unknown direction {direction!r}")


def slc_window(
    *,
    erased_mean: float,
    erased_sigma: float,
    programmed_mean: float,
    programmed_sigma: float,
    read_ref: float,
) -> VthWindow:
    """Build a two-level (SLC) window."""
    return VthWindow(
        levels=(
            VthLevel(VthState.ERASED, erased_mean, erased_sigma),
            VthLevel(VthState.P1, programmed_mean, programmed_sigma),
        ),
        read_refs=(read_ref,),
    )


def evenly_spaced_window(
    *,
    erased_mean: float,
    erased_sigma: float,
    top_mean: float,
    programmed_sigma: float,
    n_levels: int,
) -> VthWindow:
    """Build an MLC/TLC-style window with evenly spaced programmed states.

    The erased state sits at ``erased_mean``; programmed states are
    spread up to ``top_mean``.  Read references are placed at the
    midpoints.  This mirrors how real multi-level windows pack more
    states into the same voltage range, shrinking every margin
    (paper Figure 5(b)).
    """
    if n_levels < 2:
        raise ValueError("need at least two levels")
    step = (top_mean - erased_mean) / (n_levels - 1)
    levels = []
    for i in range(n_levels):
        mean = erased_mean + i * step
        sigma = erased_sigma if i == 0 else programmed_sigma
        levels.append(VthLevel(VthState(i), mean, sigma))
    refs = tuple(
        0.5 * (levels[i].mean + levels[i + 1].mean) for i in range(n_levels - 1)
    )
    return VthWindow(levels=tuple(levels), read_refs=refs)


def gray_code_flip_weights(n_levels: int) -> tuple[float, ...]:
    """Bit flips caused by crossing each adjacent-state boundary.

    Multi-level cells use Gray coding (Figure 5(b): 11/01/00/10) so a
    single-boundary crossing flips exactly one of the stored bits.  The
    per-bit RBER contribution of boundary ``i`` is therefore
    ``1 / bits_per_cell``.
    """
    bits = n_levels.bit_length() - 1
    if 1 << bits != n_levels:
        raise ValueError(f"level count {n_levels} is not a power of two")
    return tuple(1.0 / bits for _ in range(n_levels - 1))


def sequence_mean(values: Sequence[float]) -> float:
    """Arithmetic mean helper used by characterization summaries."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)
