"""Cell-array geometry of a 3D NAND flash chip.

Terminology (paper Section 2.1, Figure 1):

* A *NAND string* is a vertical series chain of flash cells (24-176 in
  commercial chips; 48 in the chips characterized by the paper).
* A string connects to one *bitline* (BL).  Strings at different BLs
  whose gates share *wordlines* (WLs) form a *sub-block*.
* Several sub-blocks (4 or 8) form a *block*, the erase unit.  The paper
  mostly says "block" for "sub-block"; we keep both notions explicit and
  default to the paper's convention where a block exposes
  ``wordlines_per_string`` wordlines per sub-block.
* Blocks in a *plane* share the plane's bitlines, so a single BL is
  shared by thousands of strings -- the physical basis of inter-block
  multi-wordline sensing (bitwise OR).
* A die contains multiple planes; a chip contains one or more dies.

A *page* is the data stored on one wordline of one sub-block (16 KiB in
the characterized chips).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class ChipGeometry:
    """Dimensions of a NAND flash chip.

    The defaults reproduce the configuration of the paper's real-device
    characterization (160 48-layer 3D TLC chips, 16-KiB pages) and the
    simulated SSD of Table 1 (2,048 blocks/plane, 4 sub-blocks of 48 WLs
    per block, 2 planes/die).

    ``page_size_bits`` is configurable so tests and functional demos can
    run on small arrays while system-level models keep the real 16 KiB.
    """

    planes_per_die: int = 2
    blocks_per_plane: int = 2048
    subblocks_per_block: int = 4
    wordlines_per_string: int = 48
    page_size_bits: int = 16 * 1024 * 8
    dies_per_chip: int = 1

    def __post_init__(self) -> None:
        for name in (
            "planes_per_die",
            "blocks_per_plane",
            "subblocks_per_block",
            "wordlines_per_string",
            "page_size_bits",
            "dies_per_chip",
        ):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")

    @property
    def page_size_bytes(self) -> int:
        if self.page_size_bits % 8:
            raise ValueError("page size is not byte aligned")
        return self.page_size_bits // 8

    @property
    def wordlines_per_block(self) -> int:
        """Total wordlines exposed by a block across its sub-blocks.

        Table 1 reports 196 (4 x 48 = 192; the datasheet rounds to 196
        because of dummy wordlines, which store no user data and are not
        modeled).
        """
        return self.subblocks_per_block * self.wordlines_per_string

    @property
    def pages_per_block(self) -> int:
        """SLC-mode pages per block (one page per wordline)."""
        return self.wordlines_per_block

    @property
    def pages_per_plane(self) -> int:
        return self.blocks_per_plane * self.pages_per_block

    @property
    def bitlines_per_plane(self) -> int:
        """One sensed bit per bitline per sub-block read."""
        return self.page_size_bits

    @property
    def block_capacity_bits(self) -> int:
        return self.pages_per_block * self.page_size_bits

    @property
    def plane_capacity_bits(self) -> int:
        return self.blocks_per_plane * self.block_capacity_bits

    @property
    def die_capacity_bits(self) -> int:
        return self.planes_per_die * self.plane_capacity_bits

    def scaled(self, **overrides: int) -> "ChipGeometry":
        """Return a copy with some dimensions overridden.

        Used throughout the tests to shrink the array while keeping the
        structural ratios intact.
        """
        params = {
            "planes_per_die": self.planes_per_die,
            "blocks_per_plane": self.blocks_per_plane,
            "subblocks_per_block": self.subblocks_per_block,
            "wordlines_per_string": self.wordlines_per_string,
            "page_size_bits": self.page_size_bits,
            "dies_per_chip": self.dies_per_chip,
        }
        unknown = set(overrides) - set(params)
        if unknown:
            raise TypeError(f"unknown geometry fields: {sorted(unknown)}")
        params.update(overrides)
        return ChipGeometry(**params)


#: Geometry used by the paper's real-device characterization, scaled to
#: a size that is practical to hold in memory for functional tests.
TEST_GEOMETRY = ChipGeometry(
    planes_per_die=2,
    blocks_per_plane=8,
    subblocks_per_block=2,
    wordlines_per_string=48,
    page_size_bits=512,
)


@dataclass(frozen=True, order=True)
class BlockAddress:
    """Physical address of one sub-block (the paper's "block")."""

    plane: int
    block: int
    subblock: int = 0

    def validate(self, geometry: ChipGeometry) -> None:
        if not 0 <= self.plane < geometry.planes_per_die:
            raise IndexError(f"plane {self.plane} out of range")
        if not 0 <= self.block < geometry.blocks_per_plane:
            raise IndexError(f"block {self.block} out of range")
        if not 0 <= self.subblock < geometry.subblocks_per_block:
            raise IndexError(f"subblock {self.subblock} out of range")


@dataclass(frozen=True, order=True)
class WordlineAddress:
    """Physical address of one wordline within a sub-block."""

    plane: int
    block: int
    subblock: int
    wordline: int

    @property
    def block_address(self) -> BlockAddress:
        return BlockAddress(self.plane, self.block, self.subblock)

    def validate(self, geometry: ChipGeometry) -> None:
        self.block_address.validate(geometry)
        if not 0 <= self.wordline < geometry.wordlines_per_string:
            raise IndexError(f"wordline {self.wordline} out of range")


# In SLC mode every wordline holds exactly one page, so a page address
# is a wordline address.  The alias keeps call sites readable.
PageAddress = WordlineAddress


def iter_wordlines(
    geometry: ChipGeometry, block: BlockAddress
) -> Iterator[WordlineAddress]:
    """Yield every wordline address of a sub-block in string order."""
    block.validate(geometry)
    for wordline in range(geometry.wordlines_per_string):
        yield WordlineAddress(block.plane, block.block, block.subblock, wordline)


def iter_blocks(geometry: ChipGeometry) -> Iterator[BlockAddress]:
    """Yield every sub-block address of a die, plane-major."""
    for plane in range(geometry.planes_per_die):
        for block in range(geometry.blocks_per_plane):
            for subblock in range(geometry.subblocks_per_block):
                yield BlockAddress(plane, block, subblock)


@dataclass
class StringGroup:
    """A set of wordlines that share NAND strings (same sub-block).

    Intra-block MWS may target any subset of one string group; the sense
    result is the bitwise AND of the targeted wordlines (paper
    Section 4.1, Figure 9(a)).
    """

    block: BlockAddress
    wordlines: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(set(self.wordlines)) != len(self.wordlines):
            raise ValueError("duplicate wordlines in string group")

    def addresses(self) -> tuple[WordlineAddress, ...]:
        return tuple(
            WordlineAddress(
                self.block.plane, self.block.block, self.block.subblock, wl
            )
            for wl in self.wordlines
        )
