"""Latency model of chip operations, including MWS.

Anchors (paper Section 5.1/5.2 and Table 1):

* tR (SLC-mode page read)   = 22.5 us
* tPROG (SLC)               = 200 us; MLC 500 us; TLC 700 us
* tESP (full effort)        = 400 us (= 2 x tPROG)
* tBERS (block erase)       = 3.5 ms
* intra-block MWS of all 48 wordlines: tMWS = 1.033 x tR (Fig. 12);
  at <= 8 wordlines the increase is below 1%.
* inter-block MWS: the extra wordline-precharge time is hidden by the
  bitline precharge until ~8 blocks; at 32 blocks tMWS = 1.363 x tR
  (Fig. 13).
* the fixed command latency adopted for system evaluation: tMWS =
  25 us with at most 4 blocks activated (Table 1).

The intra-block slowdown is modeled as evaluation-time growth: each
additional VREF-biased cell adds series resistance to the string,
stretching the RC evaluation.  The inter-block penalty is modeled as
``max(bitline_precharge, wordline_precharge x blocks)``: activating
more blocks charges proportionally more wordlines, which stays hidden
under the fixed bitline precharge until the crossover.  Constants are
solved from the two figure endpoints; the *shapes* of Figs. 12/13 then
follow from the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TimingParameters:
    """Raw timing constants (microseconds)."""

    t_read_slc_us: float = 22.5
    t_prog_slc_us: float = 200.0
    t_prog_mlc_us: float = 500.0
    t_prog_tlc_us: float = 700.0
    t_erase_us: float = 3500.0
    #: Fixed MWS command latency used by the system-level evaluation
    #: (Table 1), valid when at most `mws_block_limit` blocks are
    #: activated.
    t_mws_fixed_us: float = 25.0
    mws_block_limit: int = 4

    #: Fraction of tR spent in the evaluation phase (Figure 2's E step).
    eval_fraction: float = 0.133

    #: Bitline-precharge duration, and per-block wordline-precharge
    #: cost, solved from Fig. 13's anchors (hidden until 8 blocks;
    #: +36.3% of tR at 32 blocks).
    t_bitline_precharge_us: float = 8.17 / 3.0
    t_wordline_precharge_per_block_us: float = 8.17 / 24.0


@dataclass
class TimingModel:
    """Latency calculator for every chip operation."""

    params: TimingParameters = field(default_factory=TimingParameters)

    @property
    def t_read_us(self) -> float:
        return self.params.t_read_slc_us

    def t_program_us(self, mode: str, esp_extra: float = 0.0) -> float:
        p = self.params
        if mode == "slc":
            return p.t_prog_slc_us
        if mode == "esp":
            if not 0.0 <= esp_extra <= 1.0:
                raise ValueError("esp_extra must be in [0, 1]")
            return p.t_prog_slc_us * (1.0 + esp_extra)
        if mode == "mlc":
            return p.t_prog_mlc_us
        if mode == "tlc":
            return p.t_prog_tlc_us
        raise ValueError(f"unknown programming mode {mode!r}")

    def t_erase_us(self) -> float:
        return self.params.t_erase_us

    # ------------------------------------------------------------------
    # MWS latency (physically derived; Figs. 12 and 13)
    # ------------------------------------------------------------------

    def intra_block_penalty_us(self, n_wordlines: int) -> float:
        """Evaluation-time stretch from sensing ``n_wordlines`` in one
        string: each extra VREF-biased cell adds series resistance."""
        if n_wordlines < 1:
            raise ValueError("n_wordlines must be >= 1")
        p = self.params
        t_eval = p.t_read_slc_us * p.eval_fraction
        # Solved so that 48 wordlines cost +3.3% of tR total.
        slowdown = (0.033 * p.t_read_slc_us) / (47 * t_eval)
        return t_eval * slowdown * (n_wordlines - 1)

    def inter_block_penalty_us(self, n_blocks: int) -> float:
        """Wordline-precharge overflow beyond the bitline precharge."""
        if n_blocks < 1:
            raise ValueError("n_blocks must be >= 1")
        p = self.params
        wl_precharge = p.t_wordline_precharge_per_block_us * n_blocks
        return max(0.0, wl_precharge - p.t_bitline_precharge_us)

    def t_mws_us(self, n_wordlines: int, n_blocks: int = 1) -> float:
        """Latency of a reliable MWS operation (intra, inter or
        combined).  ``n_wordlines`` counts all targeted wordlines; the
        intra penalty uses the worst string (most wordlines in one
        block), approximated by ceil division."""
        if n_blocks < 1 or n_wordlines < n_blocks:
            raise ValueError("need at least one wordline per block")
        worst_per_string = -(-n_wordlines // n_blocks)
        return (
            self.params.t_read_slc_us
            + self.intra_block_penalty_us(worst_per_string)
            + self.inter_block_penalty_us(n_blocks)
        )

    def t_mws_fixed_us(self, n_blocks: int = 1) -> float:
        """The fixed 25-us command latency adopted by the system
        evaluation, enforcing the Table 1 block limit."""
        p = self.params
        if n_blocks > p.mws_block_limit:
            raise ValueError(
                f"inter-block MWS limited to {p.mws_block_limit} blocks "
                f"(Table 1); got {n_blocks}"
            )
        return p.t_mws_fixed_us
