"""Error mechanisms of NAND flash memory.

Implements the four error sources the paper names (Section 2.2):
program interference, data retention loss, read disturbance, and
cell-to-cell interference (folded into the interference term), plus
P/E-cycle wear which amplifies all of them.

Two evaluation paths share one parameterization:

* :meth:`ErrorModel.rber` -- closed-form RBER from Gaussian tail mass.
  Used for the Fig. 8 / Fig. 11 characterization sweeps where the
  interesting probabilities reach 1e-12 (unsampleable).
* :meth:`ErrorModel.perturb` -- Monte-Carlo perturbation of a concrete
  V_TH array.  Used by the functional chip model so that end-to-end
  reads/MWS operations experience *actual* bit errors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.flash.calibration import (
    DEFAULT_CALIBRATION,
    FlashCalibration,
    MlcErrorConstants,
    TlcErrorConstants,
)
from repro.flash.vth import (
    VthWindow,
    evenly_spaced_window,
    gaussian_tail,
    slc_window,
)


@dataclass(frozen=True)
class OperatingCondition:
    """Stress condition under which a wordline is evaluated.

    ``randomized`` selects whether the stored data went through the
    SSD's data randomizer.  ``esp_extra`` is tESP/tPROG - 1 in [0, 1];
    zero means regular SLC-mode programming.  ``sigma_multiplier``
    models block-to-block process variation (1.0 = median block).
    """

    pe_cycles: int = 0
    retention_months: float = 0.0
    reads: int = 0
    randomized: bool = True
    esp_extra: float = 0.0
    sigma_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.pe_cycles < 0:
            raise ValueError("pe_cycles must be >= 0")
        if self.retention_months < 0:
            raise ValueError("retention_months must be >= 0")
        if self.reads < 0:
            raise ValueError("reads must be >= 0")
        if not 0.0 <= self.esp_extra <= 1.0:
            raise ValueError("esp_extra must be in [0, 1]")
        if self.sigma_multiplier <= 0:
            raise ValueError("sigma_multiplier must be positive")

    def with_quality(self, sigma_multiplier: float) -> "OperatingCondition":
        return replace(self, sigma_multiplier=sigma_multiplier)


#: Worst-case condition of the paper's characterization (Section 5.1):
#: 10K P/E cycles, 1-year retention at 30 C, checkered data pattern
#: (i.e. randomization disabled).
WORST_CASE_CONDITION = OperatingCondition(
    pe_cycles=10_000, retention_months=12.0, randomized=False
)


@dataclass(frozen=True)
class SlcShifts:
    """Resolved V_TH perturbations for one SLC condition (volts)."""

    retention_down: float
    erased_up: float
    sigma_factor: float
    erased_sigma: float
    programmed_sigma: float
    programmed_mean: float
    read_ref: float
    erased_mean: float


class ErrorModel:
    """Closed-form and Monte-Carlo NAND error evaluation."""

    def __init__(self, calibration: FlashCalibration | None = None) -> None:
        self.calibration = calibration or DEFAULT_CALIBRATION
        # slc_shifts is pure math over a frozen condition and sits on
        # the per-sense hot path of the functional simulator; memoize.
        self._slc_shift_cache: dict[OperatingCondition, SlcShifts] = {}

    # ------------------------------------------------------------------
    # SLC (and ESP, which is SLC with extra ISPP effort)
    # ------------------------------------------------------------------

    def slc_shifts(self, condition: OperatingCondition) -> SlcShifts:
        """Resolve all mechanism shifts for an SLC/ESP wordline."""
        cached = self._slc_shift_cache.get(condition)
        if cached is not None:
            return cached
        shifts = self._slc_shifts_uncached(condition)
        if len(self._slc_shift_cache) < 4096:
            self._slc_shift_cache[condition] = shifts
        return shifts

    def _slc_shifts_uncached(self, condition: OperatingCondition) -> SlcShifts:
        c = self.calibration.slc
        pec = condition.pe_cycles
        retention = c.k_ret * (1.0 + c.w_ret * pec) * math.log1p(
            condition.retention_months / c.tau_ret_months
        )
        erased_up = c.d_int0 * (1.0 + c.w_int * pec)
        if not condition.randomized:
            erased_up += c.k_pat * (1.0 + c.w_pat * pec)
        erased_up += c.k_rd * math.log1p(condition.reads)
        sigma_factor = (1.0 + c.w_sig * pec) * condition.sigma_multiplier

        extra = condition.esp_extra
        extra_eff = extra**c.esp_gamma
        programmed_mean = c.programmed_mean + c.esp_target_raise * extra_eff
        programmed_sigma = (
            c.programmed_sigma * (1.0 - c.esp_sigma_shrink * extra) * sigma_factor
        )
        read_ref = c.read_ref + c.esp_ref_slope * extra_eff
        erased_sigma = c.erased_sigma * sigma_factor
        return SlcShifts(
            retention_down=retention,
            erased_up=erased_up,
            sigma_factor=sigma_factor,
            erased_sigma=erased_sigma,
            programmed_sigma=programmed_sigma,
            programmed_mean=programmed_mean,
            read_ref=read_ref,
            erased_mean=c.erased_mean,
        )

    def slc_window(self, condition: OperatingCondition) -> VthWindow:
        """The *shifted* SLC window under ``condition`` (for sampling)."""
        s = self.slc_shifts(condition)
        return slc_window(
            erased_mean=s.erased_mean + s.erased_up,
            erased_sigma=s.erased_sigma,
            programmed_mean=s.programmed_mean - s.retention_down,
            programmed_sigma=s.programmed_sigma,
            read_ref=s.read_ref,
        )

    def slc_error_split(
        self, condition: OperatingCondition
    ) -> tuple[float, float]:
        """(P(erased read as 0), P(programmed read as 1)) per cell."""
        s = self.slc_shifts(condition)
        z_erased = (s.read_ref - (s.erased_mean + s.erased_up)) / s.erased_sigma
        z_programmed = (
            (s.programmed_mean - s.retention_down) - s.read_ref
        ) / s.programmed_sigma
        return gaussian_tail(z_erased), gaussian_tail(z_programmed)

    def slc_rber(self, condition: OperatingCondition) -> float:
        """Per-bit RBER assuming half the cells hold each value."""
        p_erased, p_programmed = self.slc_error_split(condition)
        return 0.5 * (p_erased + p_programmed)

    # ------------------------------------------------------------------
    # Multi-level modes
    # ------------------------------------------------------------------

    def _multilevel_rber(
        self,
        c: MlcErrorConstants | TlcErrorConstants,
        condition: OperatingCondition,
    ) -> float:
        window = evenly_spaced_window(
            erased_mean=c.erased_mean,
            erased_sigma=c.erased_sigma,
            top_mean=c.top_mean,
            programmed_sigma=c.programmed_sigma,
            n_levels=c.n_levels,
        )
        pec = condition.pe_cycles
        sigma_factor = (1.0 + c.w_sig * pec) * condition.sigma_multiplier
        retention_base = c.k_ret * (1.0 + c.w_ret * pec) * math.log1p(
            condition.retention_months / c.tau_ret_months
        )
        interference_base = c.d_int0 * (1.0 + c.w_int * pec)
        if not condition.randomized:
            interference_base += c.k_pat * (1.0 + c.w_pat * pec)
        interference_base += c.k_rd * math.log1p(condition.reads)

        span = c.top_mean - c.erased_mean
        n = c.n_levels
        bits = n.bit_length() - 1
        total = 0.0
        for i, ref in enumerate(window.read_refs):
            lower = window.levels[i]
            upper = window.levels[i + 1]
            h_lower = (lower.mean - c.erased_mean) / span
            h_upper = (upper.mean - c.erased_mean) / span
            # Lower state drifts up (interference, strongest near erased).
            lower_mean = lower.mean + interference_base * (1.0 - h_lower)
            # Upper state drifts down (retention, strongest near the top).
            upper_mean = upper.mean - retention_base * h_upper
            z_up = (ref - lower_mean) / (lower.sigma * sigma_factor)
            z_down = (upper_mean - ref) / (upper.sigma * sigma_factor)
            # Each state holds 1/n of the cells; one boundary crossing
            # flips one of `bits` stored bits (Gray coding).
            total += (gaussian_tail(z_up) + gaussian_tail(z_down)) / (n * bits)
        return total

    def mlc_rber(self, condition: OperatingCondition) -> float:
        return self._multilevel_rber(self.calibration.mlc, condition)

    def mlc_window(self) -> VthWindow:
        """The nominal MLC window (4 Gray-coded states)."""
        c = self.calibration.mlc
        return evenly_spaced_window(
            erased_mean=c.erased_mean,
            erased_sigma=c.erased_sigma,
            top_mean=c.top_mean,
            programmed_sigma=c.programmed_sigma,
            n_levels=c.n_levels,
        )

    def mlc_lsb_read_ref(self) -> float:
        """VREF2 -- the middle reference separating {E, P1} from
        {P2, P3}; the only reference an LSB-page read needs (Figure
        5(b), Section 9 footnote 15)."""
        return self.mlc_window().read_refs[1]

    def perturb_mlc(
        self,
        vth: np.ndarray,
        states: np.ndarray,
        condition: OperatingCondition,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Condition-dependent drift of MLC cells.

        ``states`` holds each cell's programmed level index (0..3).
        Retention pulls high states down proportionally to their
        height; interference pushes low states up proportionally to
        their depth; wear widens everything.
        """
        if vth.shape != states.shape:
            raise ValueError("vth and states must share a shape")
        c = self.calibration.mlc
        pec = condition.pe_cycles
        retention = c.k_ret * (1.0 + c.w_ret * pec) * math.log1p(
            condition.retention_months / c.tau_ret_months
        )
        interference = c.d_int0 * (1.0 + c.w_int * pec)
        if not condition.randomized:
            interference += c.k_pat * (1.0 + c.w_pat * pec)
        interference += c.k_rd * math.log1p(condition.reads)
        sigma_factor = (1.0 + c.w_sig * pec) * condition.sigma_multiplier

        height = states.astype(np.float32) / (c.n_levels - 1)
        out = vth.astype(np.float32, copy=True)
        out -= retention * height
        out += interference * (1.0 - height)
        widen = math.sqrt(max(sigma_factor**2 - 1.0, 0.0))
        if widen > 0.0:
            base_sigma = np.where(
                states == 0, c.erased_sigma, c.programmed_sigma
            ).astype(np.float32)
            noise = rng.standard_normal(out.shape).astype(np.float32)
            out += noise * base_sigma * widen
        return out

    def tlc_rber(self, condition: OperatingCondition) -> float:
        return self._multilevel_rber(self.calibration.tlc, condition)

    def rber(self, mode: str, condition: OperatingCondition) -> float:
        """Dispatch by programming-mode name ('slc', 'esp', 'mlc', 'tlc')."""
        if mode == "slc":
            return self.slc_rber(replace(condition, esp_extra=0.0))
        if mode == "esp":
            return self.slc_rber(condition)
        if mode == "mlc":
            return self.mlc_rber(condition)
        if mode == "tlc":
            return self.tlc_rber(condition)
        raise ValueError(f"unknown programming mode {mode!r}")

    # ------------------------------------------------------------------
    # Monte-Carlo path (functional chip model)
    # ------------------------------------------------------------------

    def perturb(
        self,
        vth: np.ndarray,
        programmed: np.ndarray,
        condition: OperatingCondition,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Apply condition-dependent shifts to a concrete V_TH array.

        ``programmed`` is a boolean mask of cells in the programmed
        state.  Returns a new array; the stored (pristine) V_TH is left
        untouched so conditions are not cumulative across calls.
        """
        if vth.shape != programmed.shape:
            raise ValueError("vth and programmed masks must share a shape")
        s = self.slc_shifts(condition)
        out = vth.astype(np.float32, copy=True)
        # Mean drift.
        out[programmed] -= s.retention_down
        out[~programmed] += s.erased_up
        # Wear-induced widening: add noise proportional to the extra
        # sigma (variance difference between stressed and pristine).
        widen = math.sqrt(max(s.sigma_factor**2 - 1.0, 0.0))
        if widen > 0.0:
            c = self.calibration.slc
            noise = rng.standard_normal(out.shape).astype(np.float32)
            base_sigma = np.where(
                programmed,
                c.programmed_sigma * (1.0 - c.esp_sigma_shrink * condition.esp_extra),
                c.erased_sigma,
            ).astype(np.float32)
            out += noise * base_sigma * widen
        return out

    # ------------------------------------------------------------------
    # Convenience predicates
    # ------------------------------------------------------------------

    def is_effectively_error_free(
        self, condition: OperatingCondition
    ) -> bool:
        """True when the statistical RBER is below the paper's
        zero-observed-errors threshold (2.07e-12 over 4.83e11 bits)."""
        return self.slc_rber(condition) < self.calibration.zero_error_rber


# ----------------------------------------------------------------------
# Typed fault exceptions
# ----------------------------------------------------------------------
#
# The fault-injection plane (:mod:`repro.flash.faults`) and the
# recovery policy in the query engine communicate through this
# hierarchy.  The base class subclasses ``RuntimeError`` so existing
# callers (and tests) that catch the historical bare ``RuntimeError``
# keep working.


class FlashFault(RuntimeError):
    """Base class for all injected/operational flash failures."""


class SenseFault(FlashFault):
    """A (transient) multi-wordline or page sense reported failure.

    Transient: a retry of the same sense may succeed.  Raised by the
    chip when its attached :class:`~repro.flash.faults.FaultInjector`
    draws a sense fault for the attempt.
    """

    def __init__(self, message: str, *, chip: int | None = None) -> None:
        super().__init__(message)
        self.chip = chip


class BadBlockFault(FlashFault):
    """An operation targeted a block marked bad (persistent)."""

    def __init__(self, message: str, *, address=None) -> None:
        super().__init__(message)
        self.address = address


class ProgramFault(FlashFault):
    """A page program operation failed at the chip."""


class EraseFault(FlashFault):
    """A block erase operation failed at the chip."""


class ChipStall(FlashFault):
    """The chip (or its channel) stalled; the operation must wait.

    Carries the stall duration so the caller can charge the delay into
    the event simulation before retrying.
    """

    def __init__(self, message: str, *, stall_us: float = 0.0) -> None:
        super().__init__(message)
        self.stall_us = stall_us


class ChipUnavailableError(FlashFault):
    """The chip is quarantined/offline; work cannot be served on it."""

    def __init__(self, message: str, *, chip: int | None = None) -> None:
        super().__init__(message)
        self.chip = chip


class RetryExhaustedError(FlashFault):
    """Bounded retry gave up.

    Raised both by :meth:`NandFlashChip.read_page_with_retry` (carrying
    the attempted VREF offsets and the failing page address) and by the
    engine's recovery loop when every attempt of a sense failed and
    degraded re-execution was unavailable or also failed.
    """

    def __init__(
        self,
        message: str,
        *,
        address=None,
        vref_offsets: tuple[float, ...] = (),
        attempts: int = 0,
    ) -> None:
        super().__init__(message)
        self.address = address
        self.vref_offsets = tuple(vref_offsets)
        self.attempts = attempts


class ReconstructionError(FlashFault):
    """Parity reconstruction of a lost chunk could not complete.

    Raised by the redundancy plane when a degraded read cannot gather
    every surviving peer + parity page it needs -- no parity recorded
    for the chunk's rotation group (parity striping off, or the vector
    predates it), a survivor chip also unavailable, or a peer page
    itself faulting.  The query then surfaces the original failure.
    """

    def __init__(self, message: str, *, chunk: int | None = None) -> None:
        super().__init__(message)
        self.chunk = chunk


#: ISSUE-facing aliases (the spec names the short forms).
RetryExhausted = RetryExhaustedError
ChipUnavailable = ChipUnavailableError
