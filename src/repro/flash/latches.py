"""Per-plane latch circuitry: sensing latch, cache latch, XOR logic.

Models the latch behaviour of Figures 3, 4 and 6 at the logical level:

* The *sensing latch* (S-latch) captures the evaluation result.  If it
  is **not** re-initialized before a sense, newly sensed data N leaves
  ``OUTS = N AND OUTS`` -- ParaBit's AND accumulation (Figure 6(b)).
* The *cache latch* (C-latch) receives S-latch data when M3 is
  enabled; latching N onto existing data leaves ``OUTL = N OR OUTL``
  -- ParaBit's OR accumulation (Figure 6(c)).
* An *inverse sense* stores the complement of the evaluation (Figure
  4).  It requires S-latch initialization first, so inverse sensing
  cannot AND-accumulate (paper Figure 16 caption).
* Modern chips provide XOR between latches (Section 6.1), used for
  on-chip randomization and test, which Flash-Cosmos reuses for
  bitwise XOR/XNOR.

In the default *packed* mode both latches hold pages as ``uint64``
words (64 bits per element), so ParaBit AND/OR accumulation, the
transfer OR-merge, and the XOR command are single word-wide in-place
operations on persistent buffers -- no per-byte arrays and no
allocation on the steady-state sense path.  ``packed=False`` keeps the
original one-byte-per-bit storage for equivalence testing.

:meth:`LatchBank.capture_batch` additionally replays the *whole latch
protocol of many independent command sequences at once*: plans that
share an ISCM step signature evolve their S/C latches as 2-D
``(lanes, words)`` matrices, so inverse capture, ParaBit AND/OR
accumulation, transfer merges, and latch XOR land word-wide for every
lane in one NumPy call per step instead of one call per sense.  The
batched executor (:class:`repro.core.mws.MwsExecutor`) is its only
intended caller; the scalar protocol stays the reference semantics.
"""

from __future__ import annotations

import numpy as np

from repro.flash.packing import (
    FULL_WORD,
    pack_bits,
    pad_mask,
    unpack_words,
    words_per_page,
)


class LatchStateError(RuntimeError):
    """Raised when a latch operation violates the circuit's protocol."""


class LatchBank:
    """Logical state of one plane's latch circuitry."""

    def __init__(self, page_bits: int, *, packed: bool = True) -> None:
        if page_bits < 1:
            raise ValueError("page_bits must be >= 1")
        self.page_bits = page_bits
        self.packed = packed
        #: Monotonic mutation counter: every operation that changes the
        #: bank's persistent S/C state bumps it.  The batched executor's
        #: window-replay memo compares recorded marks against it to
        #: prove "nothing touched this plane since" without content
        #: comparison (the persistent buffers keep their identity across
        #: operations, so object identity cannot tell).
        self.ops = 0
        self._sense: np.ndarray | None = None
        self._cache: np.ndarray | None = None
        if packed:
            self._n_words = words_per_page(page_bits)
            self._pad = pad_mask(page_bits)
            # Persistent latch buffers: initialization refills them in
            # place instead of allocating fresh arrays per sense.
            self._sense_buf = np.empty(self._n_words, dtype=np.uint64)
            self._cache_buf = np.empty(self._n_words, dtype=np.uint64)
        else:
            self._sense_buf = np.empty(page_bits, dtype=np.uint8)
            self._cache_buf = np.empty(page_bits, dtype=np.uint8)

    # ------------------------------------------------------------------
    # Initialization (ISCM flags)
    # ------------------------------------------------------------------

    def init_sense(self) -> None:
        """Initialize the S-latch (activating M1: all ones, so that a
        subsequent AND-accumulating sense is an identity)."""
        self.ops += 1
        self._sense_buf.fill(FULL_WORD if self.packed else 1)
        self._sense = self._sense_buf

    def init_cache(self) -> None:
        """Initialize the C-latch (activating M4: all zeros, so that a
        subsequent OR-merge transfer is an identity)."""
        self.ops += 1
        self._cache_buf.fill(0)
        self._cache = self._cache_buf

    # ------------------------------------------------------------------
    # Sensing and transfer
    # ------------------------------------------------------------------

    def capture(self, sensed: np.ndarray, *, inverse: bool = False) -> None:
        """Latch an evaluation result into the S-latch.

        ``sensed`` may be a packed ``uint64`` word array or an
        unpacked 0/1 page.  With the S-latch initialized this stores
        the result (or its complement for an inverse sense).  Without
        initialization the circuit AND-accumulates; inverse sensing in
        that state is not electrically meaningful and raises.
        """
        data = self._coerce(sensed)
        self.ops += 1
        if inverse:
            if self._sense is None or not self._sense_is_fresh():
                raise LatchStateError(
                    "inverse sensing requires a freshly initialized S-latch"
                )
            if self.packed:
                np.bitwise_not(data, out=self._sense)
                self._sense |= self._pad
            else:
                np.subtract(1, data, out=self._sense)
            return
        if self._sense is None:
            raise LatchStateError("S-latch used before initialization")
        self._sense &= data

    def transfer_to_cache(self) -> None:
        """Move S-latch data to the C-latch (enable M3): OR-merge onto
        whatever the C-latch holds."""
        if self._sense is None:
            raise LatchStateError("transfer with empty S-latch")
        if self._cache is None:
            raise LatchStateError("transfer with uninitialized C-latch")
        self.ops += 1
        self._cache |= self._sense

    def xor_into_cache(self) -> None:
        """C-latch := S-latch XOR C-latch (the on-chip XOR feature)."""
        if self._sense is None or self._cache is None:
            raise LatchStateError("XOR requires both latches to hold data")
        self.ops += 1
        self._cache ^= self._sense

    def capture_batch(
        self,
        steps,
        sensed: list[np.ndarray],
        *,
        land_lane: int | None = None,
    ) -> np.ndarray:
        """Replay the latch protocol of many independent plans at once.

        ``steps`` is the *uniform* per-plan step sequence: each element
        is either an ISCM flag object (a sense step, duck-typed with
        ``inverse``/``init_sense``/``init_cache``/``transfer``
        attributes, so :class:`repro.flash.chip.IscmFlags` fits without
        an import cycle) or ``None`` for the latch XOR command.
        ``sensed`` holds one packed ``(n_lanes, n_words)`` matrix per
        sense step -- the rows :meth:`SensingEngine.sense_batch`
        produced for every lane's sense at that step.  Lanes are
        independent: lane ``k`` evolves exactly as if its commands had
        driven the scalar protocol (init cache, init sense, capture,
        transfer -- the chip's ISCM ordering) on a private bank.

        Returns the final C-latch contents of every lane as
        ones-padded packed words.  With ``land_lane`` set, that lane's
        final S/C state is copied into this bank's persistent buffers,
        leaving the bank exactly as if the lane's plan had executed
        through the scalar path most recently (the batched executor
        lands the queue's last plan per plane).

        On an unpacked bank the same replay runs over ``(n_lanes,
        page_bits)`` 0/1 byte matrices (the batched V_TH error plane's
        representation); semantics are step-for-step identical.

        Protocol violations raise :class:`LatchStateError` with the
        scalar path's messages.  One deliberate tightening: inverse
        capture demands a *freshly initialized* S-latch in every lane;
        the scalar path accepts an S-latch whose data merely happens
        to be all ones, a coincidence no planner-generated sequence
        relies on.
        """
        packed = self.packed
        matrices = list(sensed)
        n_lanes = matrices[0].shape[0] if matrices else 0
        if packed:
            shape = (n_lanes, self._n_words)
            dtype = np.uint64
            fill = FULL_WORD
        else:
            shape = (n_lanes, self.page_bits)
            dtype = np.uint8
            fill = 1
        sense: np.ndarray | None = None
        cache: np.ndarray | None = None
        sense_fresh = False
        next_matrix = 0
        for step in steps:
            if step is None:  # the latch XOR command
                if sense is None or cache is None:
                    raise LatchStateError(
                        "XOR requires both latches to hold data"
                    )
                cache ^= sense
                continue
            data = matrices[next_matrix]
            next_matrix += 1
            if data.shape != shape:
                raise ValueError(
                    f"batched sense matrix must have shape {shape}, "
                    f"got {data.shape}"
                )
            if step.init_cache:
                if cache is None:
                    cache = np.zeros(shape, dtype=dtype)
                else:
                    cache.fill(0)
            if step.init_sense:
                if sense is None:
                    sense = np.empty(shape, dtype=dtype)
                sense.fill(fill)
                sense_fresh = True
            if step.inverse:
                if sense is None or not sense_fresh:
                    raise LatchStateError(
                        "inverse sensing requires a freshly initialized "
                        "S-latch"
                    )
                if packed:
                    np.bitwise_not(data, out=sense)
                    sense |= self._pad
                else:
                    np.subtract(1, data, out=sense)
            else:
                if sense is None:
                    raise LatchStateError(
                        "S-latch used before initialization"
                    )
                sense &= data
            sense_fresh = False
            if step.transfer:
                if cache is None:
                    raise LatchStateError(
                        "transfer with uninitialized C-latch"
                    )
                cache |= sense
        if cache is None:
            raise LatchStateError("C-latch holds no data")
        if land_lane is not None:
            self.ops += 1
            np.copyto(self._cache_buf, cache[land_lane])
            self._cache = self._cache_buf
            if sense is not None:
                np.copyto(self._sense_buf, sense[land_lane])
                self._sense = self._sense_buf
        return cache | self._pad if packed else cache

    def _sense_is_fresh(self) -> bool:
        """Whether the S-latch still holds the all-ones init pattern
        (padding bits excluded in packed mode)."""
        if self.packed:
            return bool(((self._sense | self._pad) == FULL_WORD).all())
        return bool(self._sense.all())

    # ------------------------------------------------------------------
    # Reading out
    # ------------------------------------------------------------------

    @property
    def sense_data(self) -> np.ndarray:
        """Unpacked S-latch contents (uint8 0/1 page)."""
        if self._sense is None:
            raise LatchStateError("S-latch holds no data")
        if self.packed:
            return unpack_words(self._sense, self.page_bits)
        return self._sense.copy()

    @property
    def cache_data(self) -> np.ndarray:
        """Unpacked C-latch contents (uint8 0/1 page)."""
        if self._cache is None:
            raise LatchStateError("C-latch holds no data")
        if self.packed:
            return unpack_words(self._cache, self.page_bits)
        return self._cache.copy()

    @property
    def sense_words(self) -> np.ndarray:
        """Packed S-latch contents (uint64 words, ones-padded copy)."""
        if self._sense is None:
            raise LatchStateError("S-latch holds no data")
        if self.packed:
            return self._sense | self._pad
        return pack_bits(self._sense)

    @property
    def cache_words(self) -> np.ndarray:
        """Packed C-latch contents (uint64 words, ones-padded copy)."""
        if self._cache is None:
            raise LatchStateError("C-latch holds no data")
        if self.packed:
            return self._cache | self._pad
        return pack_bits(self._cache)

    def load_cache(self, data: np.ndarray) -> None:
        """Directly load the C-latch (used when the controller writes
        data into the chip for a subsequent XOR).  Accepts packed
        words or an unpacked 0/1 page."""
        self.ops += 1
        np.copyto(self._cache_buf, self._coerce(data))
        self._cache = self._cache_buf

    def _coerce(self, data: np.ndarray) -> np.ndarray:
        """Bring caller data into this bank's native representation."""
        arr = np.asarray(data)
        if arr.dtype == np.uint64:
            if arr.shape != (words_per_page(self.page_bits),):
                raise ValueError(
                    f"packed latch page must have "
                    f"{words_per_page(self.page_bits)} words, got {arr.shape}"
                )
            if self.packed:
                return arr
            return unpack_words(arr, self.page_bits)
        checked = self._check_page(arr)
        if self.packed:
            return pack_bits(checked)
        return checked

    def _check_page(self, data: np.ndarray) -> np.ndarray:
        arr = np.asarray(data, dtype=np.uint8)
        if arr.shape != (self.page_bits,):
            raise ValueError(
                f"latch page must have {self.page_bits} bits, got {arr.shape}"
            )
        # uint8 cannot be negative, so a single max() comparison is the
        # full 0/1 domain check (this runs once per sense -- hot path).
        if arr.size and int(arr.max()) > 1:
            raise ValueError("latch data must be 0/1 bits")
        return arr
