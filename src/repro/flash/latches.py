"""Per-plane latch circuitry: sensing latch, cache latch, XOR logic.

Models the latch behaviour of Figures 3, 4 and 6 at the logical level:

* The *sensing latch* (S-latch) captures the evaluation result.  If it
  is **not** re-initialized before a sense, newly sensed data N leaves
  ``OUTS = N AND OUTS`` -- ParaBit's AND accumulation (Figure 6(b)).
* The *cache latch* (C-latch) receives S-latch data when M3 is
  enabled; latching N onto existing data leaves ``OUTL = N OR OUTL``
  -- ParaBit's OR accumulation (Figure 6(c)).
* An *inverse sense* stores the complement of the evaluation (Figure
  4).  It requires S-latch initialization first, so inverse sensing
  cannot AND-accumulate (paper Figure 16 caption).
* Modern chips provide XOR between latches (Section 6.1), used for
  on-chip randomization and test, which Flash-Cosmos reuses for
  bitwise XOR/XNOR.
"""

from __future__ import annotations

import numpy as np


class LatchStateError(RuntimeError):
    """Raised when a latch operation violates the circuit's protocol."""


class LatchBank:
    """Logical state of one plane's latch circuitry."""

    def __init__(self, page_bits: int) -> None:
        if page_bits < 1:
            raise ValueError("page_bits must be >= 1")
        self.page_bits = page_bits
        self._sense: np.ndarray | None = None
        self._cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Initialization (ISCM flags)
    # ------------------------------------------------------------------

    def init_sense(self) -> None:
        """Initialize the S-latch (activating M1: all ones, so that a
        subsequent AND-accumulating sense is an identity)."""
        self._sense = np.ones(self.page_bits, dtype=np.uint8)

    def init_cache(self) -> None:
        """Initialize the C-latch (activating M4: all zeros, so that a
        subsequent OR-merge transfer is an identity)."""
        self._cache = np.zeros(self.page_bits, dtype=np.uint8)

    # ------------------------------------------------------------------
    # Sensing and transfer
    # ------------------------------------------------------------------

    def capture(self, sensed: np.ndarray, *, inverse: bool = False) -> None:
        """Latch an evaluation result into the S-latch.

        With the S-latch initialized this stores ``sensed`` (or its
        complement for an inverse sense).  Without initialization the
        circuit AND-accumulates; inverse sensing in that state is not
        electrically meaningful and raises.
        """
        data = self._check_page(sensed)
        if inverse:
            if self._sense is None or not bool(self._sense.all()):
                raise LatchStateError(
                    "inverse sensing requires a freshly initialized S-latch"
                )
            self._sense = (1 - data).astype(np.uint8)
            return
        if self._sense is None:
            raise LatchStateError("S-latch used before initialization")
        self._sense = self._sense & data

    def transfer_to_cache(self) -> None:
        """Move S-latch data to the C-latch (enable M3): OR-merge onto
        whatever the C-latch holds."""
        if self._sense is None:
            raise LatchStateError("transfer with empty S-latch")
        if self._cache is None:
            raise LatchStateError("transfer with uninitialized C-latch")
        self._cache = self._cache | self._sense

    def xor_into_cache(self) -> None:
        """C-latch := S-latch XOR C-latch (the on-chip XOR feature)."""
        if self._sense is None or self._cache is None:
            raise LatchStateError("XOR requires both latches to hold data")
        self._cache = self._cache ^ self._sense

    # ------------------------------------------------------------------
    # Reading out
    # ------------------------------------------------------------------

    @property
    def sense_data(self) -> np.ndarray:
        if self._sense is None:
            raise LatchStateError("S-latch holds no data")
        return self._sense.copy()

    @property
    def cache_data(self) -> np.ndarray:
        if self._cache is None:
            raise LatchStateError("C-latch holds no data")
        return self._cache.copy()

    def load_cache(self, data: np.ndarray) -> None:
        """Directly load the C-latch (used when the controller writes
        data into the chip for a subsequent XOR)."""
        self._cache = self._check_page(data).copy()

    def _check_page(self, data: np.ndarray) -> np.ndarray:
        arr = np.asarray(data, dtype=np.uint8)
        if arr.shape != (self.page_bits,):
            raise ValueError(
                f"latch page must have {self.page_bits} bits, got {arr.shape}"
            )
        # uint8 cannot be negative, so a single max() comparison is the
        # full 0/1 domain check (this runs once per sense -- hot path).
        if arr.size and int(arr.max()) > 1:
            raise ValueError("latch data must be 0/1 bits")
        return arr
