"""NAND flash memory substrate.

Behavioural and statistical model of a 3D NAND flash chip: cell-array
geometry, threshold-voltage (V_TH) physics, ISPP programming, error
mechanisms, sensing (including multi-wordline sensing), latch circuits,
data randomization, and timing/power models.

The model follows the organization described in Section 2 of the
Flash-Cosmos paper (MICRO 2022): vertically stacked cells form NAND
strings, strings at different bitlines form sub-blocks, sub-blocks form
blocks, blocks form planes, and planes form dies/chips.

Cell state lives in **two representations** (see
:mod:`repro.flash.array` and :mod:`repro.flash.packing`):

* the *functional plane* -- each wordline's logical bits packed 64 per
  ``uint64`` word.  Always maintained; error-free senses, the latch
  protocol, and the controller-side query path evaluate directly on
  these words (``np.bitwise_and.reduce`` over rows *is* the
  string-group AND), never touching V_TH.
* the *error plane* -- the float32 V_TH matrix the error model
  perturbs at sense time.  Eagerly materialized and ISPP-programmed
  when a chip injects errors (all reliability figures reproduce
  unchanged); for noise-free chips it is materialized lazily with
  idealized mean-valued distributions only when something asks for it
  (read-retry VREF offsets, V_TH introspection).

On top of the per-sense fast path sits a *batched* execution plane
(:meth:`~repro.flash.sensing.SensingEngine.sense_batch`,
:meth:`~repro.flash.latches.LatchBank.capture_batch`,
:meth:`~repro.flash.chip.NandFlashChip.execute_sense_batch`): a whole
queue of MWS commands stacks its packed operand rows into 3-D
``uint64`` tensors (grouped by per-block wordline-count profile) and
evaluates every string-group AND / inter-block OR -- and the latch
protocol of every plan -- with a handful of word-wide NumPy calls.
The batch plane engages only where the packed fast path does (error
injection off, no VREF offset); error-injecting senses stay strictly
per sense on the V_TH oracle, and batch results are bit-identical to
the scalar protocol with float-identical timing/energy accounting.
"""

from repro.flash.array import BlockArray, PlaneArray
from repro.flash.calibration import FlashCalibration
from repro.flash.chip import NandFlashChip
from repro.flash.errors import (
    BadBlockFault,
    ChipStall,
    ChipUnavailable,
    ChipUnavailableError,
    EraseFault,
    ErrorModel,
    FlashFault,
    OperatingCondition,
    ProgramFault,
    RetryExhausted,
    RetryExhaustedError,
    SenseFault,
)
from repro.flash.faults import FaultConfig, FaultInjector, RecoveryPolicy
from repro.flash.geometry import ChipGeometry, PageAddress, WordlineAddress
from repro.flash.ispp import IsppEngine, IsppParameters, ProgramMode
from repro.flash.latches import LatchBank
from repro.flash.randomizer import LfsrRandomizer
from repro.flash.sensing import SenseMode, SensingEngine
from repro.flash.timing import TimingModel
from repro.flash.power import PowerModel
from repro.flash.vth import VthState, VthWindow

__all__ = [
    "BadBlockFault",
    "BlockArray",
    "ChipGeometry",
    "ChipStall",
    "ChipUnavailable",
    "ChipUnavailableError",
    "EraseFault",
    "ErrorModel",
    "FaultConfig",
    "FaultInjector",
    "FlashCalibration",
    "FlashFault",
    "IsppEngine",
    "IsppParameters",
    "LatchBank",
    "LfsrRandomizer",
    "NandFlashChip",
    "OperatingCondition",
    "PageAddress",
    "PlaneArray",
    "PowerModel",
    "ProgramFault",
    "ProgramMode",
    "RecoveryPolicy",
    "RetryExhausted",
    "RetryExhaustedError",
    "SenseFault",
    "SenseMode",
    "SensingEngine",
    "TimingModel",
    "VthState",
    "VthWindow",
    "WordlineAddress",
]
