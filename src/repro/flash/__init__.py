"""NAND flash memory substrate.

Behavioural and statistical model of a 3D NAND flash chip: cell-array
geometry, threshold-voltage (V_TH) physics, ISPP programming, error
mechanisms, sensing (including multi-wordline sensing), latch circuits,
data randomization, and timing/power models.

The model follows the organization described in Section 2 of the
Flash-Cosmos paper (MICRO 2022): vertically stacked cells form NAND
strings, strings at different bitlines form sub-blocks, sub-blocks form
blocks, blocks form planes, and planes form dies/chips.
"""

from repro.flash.array import BlockArray, PlaneArray
from repro.flash.calibration import FlashCalibration
from repro.flash.chip import NandFlashChip
from repro.flash.errors import ErrorModel, OperatingCondition
from repro.flash.geometry import ChipGeometry, PageAddress, WordlineAddress
from repro.flash.ispp import IsppEngine, IsppParameters, ProgramMode
from repro.flash.latches import LatchBank
from repro.flash.randomizer import LfsrRandomizer
from repro.flash.sensing import SenseMode, SensingEngine
from repro.flash.timing import TimingModel
from repro.flash.power import PowerModel
from repro.flash.vth import VthState, VthWindow

__all__ = [
    "BlockArray",
    "ChipGeometry",
    "ErrorModel",
    "FlashCalibration",
    "IsppEngine",
    "IsppParameters",
    "LatchBank",
    "LfsrRandomizer",
    "NandFlashChip",
    "OperatingCondition",
    "PageAddress",
    "PlaneArray",
    "PowerModel",
    "ProgramMode",
    "SenseMode",
    "SensingEngine",
    "TimingModel",
    "VthState",
    "VthWindow",
    "WordlineAddress",
]
