"""LFSR-based data randomization.

Modern SSDs XOR stored data with a pseudo-random keystream seeded per
page to avoid worst-case data patterns (Section 2.2).  Randomization
is an involution (XOR with the same keystream de-randomizes), but it
does **not** commute with AND/OR performed on the raw cells -- the
reason ParaBit cannot be used on randomized data and one of the two
motivations for ESP.  tests/flash/test_randomizer.py demonstrates the
non-commutativity explicitly.

The keystream is generated word-wise: the LFSR emits 32-bit halves
that pair little-endian into packed ``uint64`` words -- the same
layout :mod:`repro.flash.packing` uses for pages -- so randomizing a
packed page is a single word-wide XOR.  Keystream words are cached
per page index with their padding bit positions forced to zero, which
keeps the stored-page ones-padding convention intact through the XOR;
the bit-level view (:func:`keystream_bits`) is derived from the same
words, so both representations randomize identically.
"""

from __future__ import annotations

import numpy as np

from repro.flash.packing import pad_mask, words_per_page

#: Fibonacci LFSR taps for a 32-bit maximal-length sequence
#: (polynomial x^32 + x^22 + x^2 + x + 1).
_TAPS = (31, 21, 1, 0)


def _keystream_words(seed: int, n_words: int) -> np.ndarray:
    """Generate ``n_words`` packed 64-bit keystream words from
    ``seed``.

    The LFSR advances 32 steps per emitted half; two consecutive
    32-bit halves view as one little-endian ``uint64`` word, matching
    the packed-page layout.  A pure-Python LFSR is adequate here:
    functional tests use small pages, keystreams are cached per page
    index, and the system-level models never materialize them.
    """
    state = seed & 0xFFFFFFFF
    if state == 0:
        state = 0xDEADBEEF
    halves = np.empty(2 * n_words, dtype=np.uint32)
    for i in range(2 * n_words):
        # Advance 32 steps to emit one half-word.
        for _ in range(32):
            bit = 0
            for tap in _TAPS:
                bit ^= (state >> tap) & 1
            state = ((state << 1) | bit) & 0xFFFFFFFF
        halves[i] = state
    return halves.view(np.uint64)


def keystream_bits(seed: int, n_bits: int) -> np.ndarray:
    """Keystream as a uint8 bit array of length ``n_bits`` (the
    unpacked view of :func:`_keystream_words`)."""
    words = _keystream_words(seed, words_per_page(n_bits))
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return bits[:n_bits].astype(np.uint8)


class LfsrRandomizer:
    """Page-granularity randomizer with per-page seeds.

    The seed mixes a device seed with the page address so neighbouring
    pages get uncorrelated keystreams (the property that breaks up
    worst-case vertical patterns along a NAND string).

    ``randomize``/``derandomize`` accept either an unpacked 0/1 page
    or a packed ``uint64`` word row (pass ``n_bits`` for packed pages
    whose bit count is not a word multiple, so the cached keystream
    carries zeros at the padding positions and the page's ones-padding
    survives the XOR).
    """

    def __init__(self, device_seed: int = 0x5A5A5A5A) -> None:
        self.device_seed = device_seed & 0xFFFFFFFF
        self._cache: dict[tuple[int, int], np.ndarray] = {}
        #: (page_index, n_bits) -> packed keystream words with padding
        #: bits zeroed; shared read-only entries (hot read path).
        self._word_cache: dict[tuple[int, int], np.ndarray] = {}

    def page_seed(self, page_index: int) -> int:
        # Multiplicative hashing (Knuth) keeps seeds well spread.
        return (self.device_seed ^ (page_index * 2654435761)) & 0xFFFFFFFF

    def _stream(self, page_index: int, n_bits: int) -> np.ndarray:
        key = (page_index, n_bits)
        stream = self._cache.get(key)
        if stream is None:
            if len(self._cache) >= 4096:
                self._cache.clear()
            stream = keystream_bits(self.page_seed(page_index), n_bits)
            self._cache[key] = stream
        return stream

    def _stream_words(self, page_index: int, n_bits: int) -> np.ndarray:
        """Packed keystream words for one page, padding bits zeroed."""
        key = (page_index, n_bits)
        words = self._word_cache.get(key)
        if words is None:
            # Bounded like the chip's hot-path memos: traffic touching
            # many distinct pages must not grow the cache forever.
            if len(self._word_cache) >= 4096:
                self._word_cache.clear()
            words = _keystream_words(
                self.page_seed(page_index), words_per_page(n_bits)
            )
            words &= ~pad_mask(n_bits)
            words.setflags(write=False)
            self._word_cache[key] = words
        return words

    def randomize(
        self,
        data_bits: np.ndarray,
        page_index: int,
        *,
        n_bits: int | None = None,
    ) -> np.ndarray:
        arr = np.asarray(data_bits)
        if arr.dtype == np.uint64:
            # Packed page: one word-wide XOR against the cached,
            # zero-padded keystream words (padding bits unchanged).
            stream = self._stream_words(
                page_index, arr.size * 64 if n_bits is None else n_bits
            )
            return arr ^ stream
        bits = np.asarray(arr, dtype=np.uint8)
        return (bits ^ self._stream(page_index, bits.size)).astype(np.uint8)

    def derandomize(
        self,
        data_bits: np.ndarray,
        page_index: int,
        *,
        n_bits: int | None = None,
    ) -> np.ndarray:
        # XOR is an involution; de-randomizing is the same operation.
        return self.randomize(data_bits, page_index, n_bits=n_bits)
