"""LFSR-based data randomization.

Modern SSDs XOR stored data with a pseudo-random keystream seeded per
page to avoid worst-case data patterns (Section 2.2).  Randomization
is an involution (XOR with the same keystream de-randomizes), but it
does **not** commute with AND/OR performed on the raw cells -- the
reason ParaBit cannot be used on randomized data and one of the two
motivations for ESP.  tests/flash/test_randomizer.py demonstrates the
non-commutativity explicitly.
"""

from __future__ import annotations

import numpy as np

#: Fibonacci LFSR taps for a 32-bit maximal-length sequence
#: (polynomial x^32 + x^22 + x^2 + x + 1).
_TAPS = (31, 21, 1, 0)


def _keystream_words(seed: int, n_words: int) -> np.ndarray:
    """Generate ``n_words`` 32-bit keystream words from ``seed``.

    A pure-Python LFSR is adequate here: functional tests use small
    pages and the system-level models never materialize keystreams.
    """
    state = seed & 0xFFFFFFFF
    if state == 0:
        state = 0xDEADBEEF
    words = np.empty(n_words, dtype=np.uint32)
    for i in range(n_words):
        # Advance 32 steps to emit one word.
        for _ in range(32):
            bit = 0
            for tap in _TAPS:
                bit ^= (state >> tap) & 1
            state = ((state << 1) | bit) & 0xFFFFFFFF
        words[i] = state
    return words


def keystream_bits(seed: int, n_bits: int) -> np.ndarray:
    """Keystream as a uint8 bit array of length ``n_bits``."""
    n_words = (n_bits + 31) // 32
    words = _keystream_words(seed, n_words)
    bits = np.unpackbits(words.view(np.uint8), bitorder="little")
    return bits[:n_bits].astype(np.uint8)


class LfsrRandomizer:
    """Page-granularity randomizer with per-page seeds.

    The seed mixes a device seed with the page address so neighbouring
    pages get uncorrelated keystreams (the property that breaks up
    worst-case vertical patterns along a NAND string).
    """

    def __init__(self, device_seed: int = 0x5A5A5A5A) -> None:
        self.device_seed = device_seed & 0xFFFFFFFF
        self._cache: dict[tuple[int, int], np.ndarray] = {}

    def page_seed(self, page_index: int) -> int:
        # Multiplicative hashing (Knuth) keeps seeds well spread.
        return (self.device_seed ^ (page_index * 2654435761)) & 0xFFFFFFFF

    def _stream(self, page_index: int, n_bits: int) -> np.ndarray:
        key = (page_index, n_bits)
        if key not in self._cache:
            self._cache[key] = keystream_bits(self.page_seed(page_index), n_bits)
        return self._cache[key]

    def randomize(self, data_bits: np.ndarray, page_index: int) -> np.ndarray:
        bits = np.asarray(data_bits, dtype=np.uint8)
        stream = self._stream(page_index, bits.size)
        return (bits ^ stream).astype(np.uint8)

    def derandomize(self, data_bits: np.ndarray, page_index: int) -> np.ndarray:
        # XOR is an involution; de-randomizing is the same operation.
        return self.randomize(data_bits, page_index)
