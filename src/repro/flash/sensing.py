"""Sensing: regular reads and multi-wordline sensing (MWS).

The read mechanism (Section 2.1, Figure 2) senses the conductance of
NAND strings.  A cell conducts when VREF exceeds its V_TH; non-target
cells always conduct because they receive VPASS.  Consequences
(Section 4.1, Figure 9):

* applying VREF to several wordlines of the *same* string makes the
  string conduct only if **every** targeted cell conducts ->
  **bitwise AND** of the targeted wordlines (intra-block MWS);
* applying VREF to wordlines in *different* blocks (strings sharing
  bitlines) discharges the bitline if **any** string conducts ->
  **bitwise OR** across the blocks (inter-block MWS);
* combining both senses computes OR-of-ANDs in one shot (Equation 1).

Sensing is where bit errors happen: the engine perturbs the stored
V_TH with the stress condition before comparing against VREF, so MWS
results carry realistic errors unless the data was ESP-programmed.

Two evaluation paths implement the same semantics:

* the **packed fast path** (``packed=True``, error injection off, no
  VREF offset): error-free conduction of a cell equals its stored bit,
  so the string-group AND is a single ``np.bitwise_and.reduce`` over
  the block's packed ``uint64`` word rows -- 64 cells per machine
  word, no V_TH materialization at all;
* the **V_TH path**: slices the block's float32 V_TH matrix, applies
  the stress perturbation (when injecting errors) and compares against
  the read reference cell by cell.  Error injection, read-retry VREF
  offsets, and the ``packed=False`` compatibility mode all take this
  path, so every reliability figure reproduces unchanged.

On top of the per-sense fast path, :meth:`SensingEngine.sense_batch`
evaluates a whole *queue* of MWS operations at once: the packed
operand rows of every sense are gathered into one 3-D ``uint64``
tensor per group-size profile and the string-group ANDs / inter-block
ORs of the entire batch collapse into a handful of
``np.bitwise_and.reduce`` / ``bitwise_or`` calls -- O(profiles)
NumPy dispatches for O(senses) sensing operations.  Row ``i`` of the
result is bit-identical to ``inter_block_mws(senses[i], ...).words``.
The V_TH path stays strictly per sense (error injection is the
per-cell oracle), which is why the batch entry point refuses to run
off the packed error-free plane.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field, replace

import numpy as np

from repro.flash.array import BlockArray
from repro.flash.errors import ErrorModel, OperatingCondition
from repro.flash.geometry import StringGroup
from repro.flash.ispp import ProgramMode
from repro.flash.packing import pack_bits, unpack_words


class SenseMode(enum.Enum):
    """Latch initialization behaviour of a sense (Figures 3 and 4)."""

    NORMAL = "normal"
    INVERSE = "inverse"


@dataclass(frozen=True)
class SenseOutcome:
    """Raw evaluation result of one sensing operation (pre-latch).

    The result is held natively in whichever representation the
    engine produced -- packed ``uint64`` words or unpacked 0/1 bits --
    and converted lazily (then cached) when the other view is asked
    for, so the packed pipeline never round-trips through bytes.
    """

    wordlines_sensed: int
    blocks_sensed: int
    n_bits: int
    _bits: np.ndarray | None = field(default=None, repr=False)
    _words: np.ndarray | None = field(default=None, repr=False)

    @classmethod
    def from_words(
        cls, words: np.ndarray, n_bits: int, *, wordlines: int, blocks: int
    ) -> "SenseOutcome":
        return cls(
            wordlines_sensed=wordlines,
            blocks_sensed=blocks,
            n_bits=n_bits,
            _words=words,
        )

    @classmethod
    def from_bits(
        cls, bits: np.ndarray, *, wordlines: int, blocks: int
    ) -> "SenseOutcome":
        bits = np.asarray(bits, dtype=np.uint8)
        return cls(
            wordlines_sensed=wordlines,
            blocks_sensed=blocks,
            n_bits=bits.size,
            _bits=bits,
        )

    @property
    def bits(self) -> np.ndarray:
        """Unpacked 0/1 result (uint8)."""
        if self._bits is None:
            object.__setattr__(
                self, "_bits", unpack_words(self._words, self.n_bits)
            )
        return self._bits

    @property
    def words(self) -> np.ndarray:
        """Packed uint64 result (ones-padded)."""
        if self._words is None:
            object.__setattr__(self, "_words", pack_bits(self._bits))
        return self._words


class SensingEngine:
    """Evaluates string conductance for reads and MWS operations."""

    def __init__(
        self,
        error_model: ErrorModel,
        *,
        rng: np.random.Generator | None = None,
        inject_errors: bool = True,
        packed: bool = True,
    ) -> None:
        self.error_model = error_model
        self.rng = rng or np.random.default_rng(0)
        self.inject_errors = inject_errors
        #: Use the packed word fast path for error-free senses.  With
        #: ``packed=False`` even error-free senses evaluate through the
        #: V_TH matrix -- the pre-packing behaviour, kept as an oracle
        #: for equivalence tests and benchmarks.
        self.packed = packed
        # Error-free sensing resolves the read reference from a
        # pristine condition whose only live input is the ESP effort;
        # cache it per effort to keep the per-sense hot path lean.
        self._pristine_read_ref: dict[float, float] = {}
        #: wordline tuple -> sorted row-index array (reused across
        #: senses instead of re-sorting/re-allocating per call).
        #: Lookups are lock-free (atomic dict.get, immutable entries);
        #: the bounded evict+insert serializes on ``_rows_lock`` so
        #: concurrent per-chip dispatch cannot interleave a clear with
        #: a partial insert.
        self._rows_cache: dict[tuple[int, ...], np.ndarray] = {}
        self._rows_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Cell-level conductance
    # ------------------------------------------------------------------

    def _rows(self, wordlines: tuple[int, ...]) -> np.ndarray:
        rows = self._rows_cache.get(wordlines)
        if rows is None:
            rows = np.array(sorted(wordlines))
            rows.setflags(write=False)
            with self._rows_lock:
                if len(self._rows_cache) >= 4096:
                    self._rows_cache.clear()
                self._rows_cache[wordlines] = rows
        return rows

    @staticmethod
    def _scan_metadata(
        block: BlockArray, wordlines: tuple[int, ...]
    ) -> tuple[bool, "ProgramMode", float]:
        """Single pass over the wordline metadata (per-sense hot path),
        shared by the scalar and batched evaluation: returns
        ``(has_mlc, mode, esp_extra)`` and raises the protocol errors
        (ESP-effort mismatch, MLC/SLC mixing) both paths must report
        identically."""
        if not wordlines:
            raise ValueError("MWS requires at least one wordline")
        metadata = block.metadata
        first = metadata[wordlines[0]]
        mode = first.mode
        esp_extra = first.esp_extra
        has_mlc = mode is ProgramMode.MLC
        mixed_modes = False
        for wl in wordlines[1:]:
            meta = metadata[wl]
            if meta.mode is not mode:
                mixed_modes = True
                if meta.mode is ProgramMode.MLC:
                    has_mlc = True
            if meta.esp_extra != esp_extra:
                raise ValueError(
                    "all wordlines of one MWS must share an ESP "
                    "programming effort -- the sense applies a single "
                    "read reference (got ESP extras "
                    f"{sorted({block.wordline_esp_extra(w) for w in wordlines})})"
                )
        if has_mlc and mixed_modes:
            raise ValueError(
                "MWS cannot mix MLC and SLC-family wordlines in one sense"
            )
        return has_mlc, mode, esp_extra

    def _conduction(
        self,
        block: BlockArray,
        wordlines: tuple[int, ...],
        condition: OperatingCondition,
        *,
        vref_offset: float = 0.0,
        force_vth: bool = False,
    ) -> np.ndarray:
        """Per-bitline conduction of one string group: AND over the
        targeted wordlines' cell conduction.

        Returns packed ``uint64`` words on the error-free fast path,
        a boolean per-bitline array on the V_TH path (callers wrap
        either into a :class:`SenseOutcome`).

        ``vref_offset`` shifts the read-reference voltage -- the
        read-retry mechanism real chips expose to recover data whose
        V_TH distribution has drifted.  ``force_vth`` routes even an
        error-free packed sense through the V_TH comparison -- the
        degraded/read-retry mode fault recovery falls back to, which
        on an error-free chip is bit-identical to the packed reduce
        (the idealized distributions are fully separated at zero
        offset), just slower.
        """
        has_mlc, mode, esp_extra = self._scan_metadata(block, wordlines)
        rows = self._rows(wordlines)
        if (
            self.packed
            and not self.inject_errors
            and vref_offset == 0.0
            and not force_vth
        ):
            # Error-free conduction of a cell equals its stored bit
            # (the calibrated states are fully separated at zero
            # offset), so the string-group AND is a word-wide reduce
            # over the packed functional plane -- no V_TH touched.
            words = np.bitwise_and.reduce(block.packed_rows(rows), axis=0)
            block.note_read(len(wordlines))
            return words
        modes = {ProgramMode.MLC} if has_mlc else {mode}
        vth = block.vth[rows]
        if self.inject_errors:
            cond = replace(
                condition,
                esp_extra=esp_extra,
                pe_cycles=max(condition.pe_cycles, block.pe_cycles),
                sigma_multiplier=condition.sigma_multiplier
                * block.sigma_multiplier,
            )
        if ProgramMode.MLC in modes:
            # LSB-page sensing: the read mechanism is identical to an
            # SLC read except for the reference voltage (VREF2 between
            # the P1 and P2 states; Section 9, footnote 15).
            read_ref = self.error_model.mlc_lsb_read_ref()
            if self.inject_errors:
                vth = self.error_model.perturb_mlc(
                    vth, block.mlc_states(rows), cond, self.rng
                )
        elif self.inject_errors:
            programmed = block.programmed_rows(rows)
            vth = self.error_model.perturb(vth, programmed, cond, self.rng)
            read_ref = self.error_model.slc_shifts(cond).read_ref
        else:
            # Error-free: only the ESP effort moves the reference
            # (retention/PEC/read-disturb terms vanish at zero stress).
            read_ref = self._pristine_read_ref.get(esp_extra)
            if read_ref is None:
                pristine = OperatingCondition(
                    randomized=condition.randomized, esp_extra=esp_extra
                )
                read_ref = self.error_model.slc_shifts(pristine).read_ref
                self._pristine_read_ref[esp_extra] = read_ref
        conducting = vth <= read_ref + vref_offset
        block.note_read(len(wordlines))
        return conducting.all(axis=0)

    def _outcome(
        self,
        payload: np.ndarray,
        *,
        n_bits: int,
        wordlines: int,
        blocks: int,
    ) -> SenseOutcome:
        if payload.dtype == np.uint64:
            return SenseOutcome.from_words(
                payload, n_bits, wordlines=wordlines, blocks=blocks
            )
        return SenseOutcome.from_bits(
            payload.astype(np.uint8), wordlines=wordlines, blocks=blocks
        )

    # ------------------------------------------------------------------
    # Public sensing operations
    # ------------------------------------------------------------------

    def read_wordline(
        self,
        block: BlockArray,
        wordline: int,
        condition: OperatingCondition,
        *,
        vref_offset: float = 0.0,
        force_vth: bool = False,
    ) -> SenseOutcome:
        """Regular page read: VREF on exactly one wordline.  For MLC
        wordlines this is the LSB-page read (single reference)."""
        payload = self._conduction(
            block,
            (wordline,),
            condition,
            vref_offset=vref_offset,
            force_vth=force_vth,
        )
        return self._outcome(
            payload,
            n_bits=block.geometry.page_size_bits,
            wordlines=1,
            blocks=1,
        )

    def read_msb_wordline(
        self,
        block: BlockArray,
        wordline: int,
        condition: OperatingCondition,
    ) -> SenseOutcome:
        """MSB-page read of an MLC wordline: two references (VREF1 and
        VREF3); MSB = 1 for cells below VREF1 (E) or above VREF3 (P3)."""
        from repro.flash.ispp import ProgramMode

        if block.metadata[wordline].mode is not ProgramMode.MLC:
            raise ValueError("MSB read requires an MLC wordline")
        window = self.error_model.mlc_window()
        ref1, _, ref3 = window.read_refs
        rows = self._rows((wordline,))
        vth = block.vth[rows]
        cond = condition
        if self.inject_errors:
            vth = self.error_model.perturb_mlc(
                vth, block.mlc_states(rows), cond, self.rng
            )
        below_ref1 = vth[0] <= ref1
        above_ref3 = vth[0] > ref3
        block.note_read(2)
        return SenseOutcome.from_bits(
            (below_ref1 | above_ref3).astype(np.uint8),
            wordlines=1,
            blocks=1,
        )

    def intra_block_mws(
        self,
        block: BlockArray,
        wordlines: tuple[int, ...],
        condition: OperatingCondition,
        *,
        vref_offset: float = 0.0,
        force_vth: bool = False,
    ) -> SenseOutcome:
        """Intra-block MWS: bitwise AND of the targeted wordlines."""
        payload = self._conduction(
            block,
            tuple(wordlines),
            condition,
            vref_offset=vref_offset,
            force_vth=force_vth,
        )
        return self._outcome(
            payload,
            n_bits=block.geometry.page_size_bits,
            wordlines=len(wordlines),
            blocks=1,
        )

    def inter_block_mws(
        self,
        targets: list[tuple[BlockArray, tuple[int, ...]]],
        condition: OperatingCondition,
        *,
        vref_offset: float = 0.0,
        force_vth: bool = False,
    ) -> SenseOutcome:
        """Inter-block MWS: OR across blocks of the AND within each
        block (Equation 1).  With one wordline per block this is plain
        bitwise OR (Figure 9(b))."""
        if not targets:
            raise ValueError("inter-block MWS requires at least one target")
        acc: np.ndarray | None = None
        total_wordlines = 0
        for block, wordlines in targets:
            conduction = self._conduction(
                block,
                tuple(wordlines),
                condition,
                vref_offset=vref_offset,
                force_vth=force_vth,
            )
            total_wordlines += len(wordlines)
            acc = conduction if acc is None else (acc | conduction)
        assert acc is not None
        return self._outcome(
            acc,
            n_bits=targets[0][0].geometry.page_size_bits,
            wordlines=total_wordlines,
            blocks=len(targets),
        )

    def sense_string_groups(
        self,
        groups: list[tuple[BlockArray, StringGroup]],
        condition: OperatingCondition,
    ) -> SenseOutcome:
        """Sense arbitrary string groups in one operation (the general
        MWS form used by the command executor)."""
        targets = [(block, group.wordlines) for block, group in groups]
        return self.inter_block_mws(targets, condition)

    # ------------------------------------------------------------------
    # Batched sensing (window-at-a-time data plane)
    # ------------------------------------------------------------------

    def sense_batch(
        self,
        senses: list[list[tuple[BlockArray, tuple[int, ...]]]],
    ) -> np.ndarray:
        """Evaluate many MWS operations in one vectorized pass.

        ``senses[i]`` is the target list of one inter-block MWS (the
        same shape :meth:`inter_block_mws` takes); the returned
        ``(n_senses, n_words)`` ``uint64`` array holds one packed,
        ones-padded result row per sense, bit-identical to
        ``inter_block_mws(senses[i], ...).words``.

        Only the packed error-free plane can batch: error injection
        and VREF offsets evaluate per cell through V_TH and stay on
        the scalar path, so this raises off that plane rather than
        silently approximating.  Senses are grouped by their
        *group-size profile* (the tuple of per-block wordline counts);
        each profile group stacks its operand rows into one 3-D
        tensor and computes every string-group AND and inter-block OR
        of the group with one reduce per segment -- O(profiles) NumPy
        dispatches for the whole batch.  Metadata validation and
        per-block read-disturb accounting match the scalar path
        exactly.
        """
        stacks: list[np.ndarray] = []
        profiles: list[tuple[int, ...]] = []
        for targets in senses:
            stack, profile, reads = self.gather_sense(targets)
            for block, n_wordlines in reads:
                block.note_read(n_wordlines)
            stacks.append(stack)
            profiles.append(profile)
        return self.sense_batch_stacks(stacks, profiles)

    def gather_sense(
        self,
        targets: list[tuple[BlockArray, tuple[int, ...]]],
    ) -> tuple[
        np.ndarray,
        tuple[int, ...],
        tuple[tuple[BlockArray, int], ...],
    ]:
        """Validate one MWS operation's targets and gather its packed
        operand rows: returns ``(stack, profile, reads)`` -- the
        ``(total_rows, n_words)`` row stack, the per-block wordline
        counts, and the ``(block, n_wordlines)`` read-disturb pairs.
        Deliberately does *not* account the read disturb: callers do
        (via ``note_read``), so a memoizing caller -- the chip's
        batched command cache -- can re-account cache hits without
        re-gathering.  Shared by :meth:`sense_batch` and
        :meth:`~repro.flash.chip.NandFlashChip.execute_sense_batch`
        so validation and gathering cannot drift between them."""
        if not targets:
            raise ValueError("inter-block MWS requires at least one target")
        profile: list[int] = []
        reads: list[tuple[BlockArray, int]] = []
        rows_list: list[np.ndarray] = []
        for block, wordlines in targets:
            wordlines = tuple(wordlines)
            self._scan_metadata(block, wordlines)
            rows_list.append(block.packed_rows(self._rows(wordlines)))
            n_wordlines = len(wordlines)
            profile.append(n_wordlines)
            reads.append((block, n_wordlines))
        stack = (
            rows_list[0]
            if len(rows_list) == 1
            else np.concatenate(rows_list, axis=0)
        )
        return stack, tuple(profile), tuple(reads)

    def sense_batch_stacks(
        self,
        stacks: list[np.ndarray],
        profiles: list[tuple[int, ...]],
    ) -> np.ndarray:
        """:meth:`sense_batch` minus validation and gathering:
        ``stacks[i]`` is one sense's operand rows already stacked into
        a ``(total_rows, n_words)`` array and ``profiles[i]`` its
        per-block wordline counts.  The chip's batched entry point
        memoizes gather/validation per command (revalidated via block
        ``layout_version``) and calls this directly, so steady-state
        windows pay only the per-profile tensor reduces."""
        if not (self.packed and not self.inject_errors):
            raise RuntimeError(
                "sense_batch requires the packed error-free plane; "
                "error injection and packed=False evaluate per sense"
            )
        n = len(stacks)
        if n == 0:
            raise ValueError("sense_batch requires at least one sense")
        groups: dict[tuple[int, ...], list[int]] = {}
        for i, profile in enumerate(profiles):
            group = groups.get(profile)
            if group is None:
                groups[profile] = [i]
            else:
                group.append(i)
        n_words = stacks[0].shape[1]
        out = np.empty((n, n_words), dtype=np.uint64)
        for profile, members in groups.items():
            total_rows = sum(profile)
            tensor = np.concatenate(
                [stacks[i] for i in members], axis=0
            ).reshape(len(members), total_rows, n_words)
            if len(profile) == 1:
                # Pure intra-block AND (one string group per sense).
                result = np.bitwise_and.reduce(tensor, axis=1)
            elif total_rows == len(profile):
                # One wordline per block: plain inter-block OR.
                result = np.bitwise_or.reduce(tensor, axis=1)
            else:
                # General OR-of-ANDs (Equation 1): AND each group
                # segment, OR the segment results.
                result = None
                lo = 0
                for size in profile:
                    segment = (
                        tensor[:, lo]
                        if size == 1
                        else np.bitwise_and.reduce(
                            tensor[:, lo : lo + size], axis=1
                        )
                    )
                    result = (
                        segment if result is None else result | segment
                    )
                    lo += size
            out[np.asarray(members)] = result
        return out
