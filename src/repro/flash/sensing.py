"""Sensing: regular reads and multi-wordline sensing (MWS).

The read mechanism (Section 2.1, Figure 2) senses the conductance of
NAND strings.  A cell conducts when VREF exceeds its V_TH; non-target
cells always conduct because they receive VPASS.  Consequences
(Section 4.1, Figure 9):

* applying VREF to several wordlines of the *same* string makes the
  string conduct only if **every** targeted cell conducts ->
  **bitwise AND** of the targeted wordlines (intra-block MWS);
* applying VREF to wordlines in *different* blocks (strings sharing
  bitlines) discharges the bitline if **any** string conducts ->
  **bitwise OR** across the blocks (inter-block MWS);
* combining both senses computes OR-of-ANDs in one shot (Equation 1).

Sensing is where bit errors happen: the engine perturbs the stored
V_TH with the stress condition before comparing against VREF, so MWS
results carry realistic errors unless the data was ESP-programmed.

Two evaluation paths implement the same semantics:

* the **packed fast path** (``packed=True``, error injection off, no
  VREF offset): error-free conduction of a cell equals its stored bit,
  so the string-group AND is a single ``np.bitwise_and.reduce`` over
  the block's packed ``uint64`` word rows -- 64 cells per machine
  word, no V_TH materialization at all;
* the **V_TH path**: slices the block's float32 V_TH matrix, applies
  the stress perturbation (when injecting errors) and compares against
  the read reference cell by cell.  Error injection, read-retry VREF
  offsets, and the ``packed=False`` compatibility mode all take this
  path, so every reliability figure reproduces unchanged.

On top of the per-sense fast path, :meth:`SensingEngine.sense_batch`
evaluates a whole *queue* of MWS operations at once: the packed
operand rows of every sense are gathered into one 3-D ``uint64``
tensor per group-size profile and the string-group ANDs / inter-block
ORs of the entire batch collapse into a handful of
``np.bitwise_and.reduce`` / ``bitwise_or`` calls -- O(profiles)
NumPy dispatches for O(senses) sensing operations.  Row ``i`` of the
result is bit-identical to ``inter_block_mws(senses[i], ...).words``.
The V_TH path stays strictly per sense (error injection is the
per-cell oracle), which is why the batch entry point refuses to run
off the packed error-free plane.
"""

from __future__ import annotations

import enum
import math
import threading
from dataclasses import dataclass, field, replace

import numpy as np

from repro.flash.array import BlockArray
from repro.flash.errors import ErrorModel, OperatingCondition
from repro.flash.geometry import StringGroup
from repro.flash.ispp import ProgramMode
from repro.flash.packing import pack_bits, unpack_rows, unpack_words


class SenseMode(enum.Enum):
    """Latch initialization behaviour of a sense (Figures 3 and 4)."""

    NORMAL = "normal"
    INVERSE = "inverse"


@dataclass(frozen=True)
class SenseOutcome:
    """Raw evaluation result of one sensing operation (pre-latch).

    The result is held natively in whichever representation the
    engine produced -- packed ``uint64`` words or unpacked 0/1 bits --
    and converted lazily (then cached) when the other view is asked
    for, so the packed pipeline never round-trips through bytes.
    """

    wordlines_sensed: int
    blocks_sensed: int
    n_bits: int
    _bits: np.ndarray | None = field(default=None, repr=False)
    _words: np.ndarray | None = field(default=None, repr=False)

    @classmethod
    def from_words(
        cls, words: np.ndarray, n_bits: int, *, wordlines: int, blocks: int
    ) -> "SenseOutcome":
        return cls(
            wordlines_sensed=wordlines,
            blocks_sensed=blocks,
            n_bits=n_bits,
            _words=words,
        )

    @classmethod
    def from_bits(
        cls, bits: np.ndarray, *, wordlines: int, blocks: int
    ) -> "SenseOutcome":
        bits = np.asarray(bits, dtype=np.uint8)
        return cls(
            wordlines_sensed=wordlines,
            blocks_sensed=blocks,
            n_bits=bits.size,
            _bits=bits,
        )

    @property
    def bits(self) -> np.ndarray:
        """Unpacked 0/1 result (uint8)."""
        if self._bits is None:
            object.__setattr__(
                self, "_bits", unpack_words(self._words, self.n_bits)
            )
        return self._bits

    @property
    def words(self) -> np.ndarray:
        """Packed uint64 result (ones-padded)."""
        if self._words is None:
            object.__setattr__(self, "_words", pack_bits(self._bits))
        return self._words


class VthBatchSchedule:
    """Prepared (deterministic) half of one batched V_TH window.

    :meth:`SensingEngine.prepare_batch_vth` resolves everything about
    a window that does not depend on the stochastic draw -- the unit
    flatten, stress-scalar columns, stacked/perturbed V_TH tensors,
    read references, noise layout, and read-disturb totals -- so
    :meth:`SensingEngine.run_batch_vth` only has to draw the window's
    Gaussian block and finish the noisy groups.  A schedule stays
    valid exactly while every target block's ``layout_version`` is
    unchanged (program/erase are the only writers of cell content and
    wordline metadata); the chip's schedule cache revalidates against
    ``read_counts`` before reusing one.
    """

    __slots__ = (
        "page_bits",
        "noise_rows",
        "sense_starts",
        "read_counts",
        "det_conducting",
        "noisy_groups",
    )

    def __init__(
        self,
        page_bits: int,
        noise_rows: int,
        sense_starts: list[int],
        read_counts: list,
        det_conducting: np.ndarray,
        noisy_groups: list,
    ) -> None:
        self.page_bits = page_bits
        self.noise_rows = noise_rows
        self.sense_starts = sense_starts
        #: (block, summed wordline count) per distinct target block --
        #: both the read-disturb accounting and the revalidation set.
        self.read_counts = read_counts
        #: (n_units, page_bits) conductance rows, final for every
        #: noise-free unit; noisy units are overwritten per run.
        self.det_conducting = det_conducting
        #: Per noisy group: (member ordinals, noise gather indices,
        #: perturbed base tensor, base-sigma tensor, widen column,
        #: read-reference column).
        self.noisy_groups = noisy_groups


class SensingEngine:
    """Evaluates string conductance for reads and MWS operations."""

    def __init__(
        self,
        error_model: ErrorModel,
        *,
        rng: np.random.Generator | None = None,
        inject_errors: bool = True,
        packed: bool = True,
    ) -> None:
        self.error_model = error_model
        self.rng = rng or np.random.default_rng(0)
        self.inject_errors = inject_errors
        #: Use the packed word fast path for error-free senses.  With
        #: ``packed=False`` even error-free senses evaluate through the
        #: V_TH matrix -- the pre-packing behaviour, kept as an oracle
        #: for equivalence tests and benchmarks.
        self.packed = packed
        # Error-free sensing resolves the read reference from a
        # pristine condition whose only live input is the ESP effort;
        # cache it per effort to keep the per-sense hot path lean.
        self._pristine_read_ref: dict[float, float] = {}
        #: wordline tuple -> sorted row-index array (reused across
        #: senses instead of re-sorting/re-allocating per call).
        #: Lookups are lock-free (atomic dict.get, immutable entries);
        #: the bounded evict+insert serializes on ``_rows_lock`` so
        #: concurrent per-chip dispatch cannot interleave a clear with
        #: a partial insert.
        self._rows_cache: dict[tuple[int, ...], np.ndarray] = {}
        self._rows_lock = threading.Lock()
        #: (condition, esp_extra, block P/E, block sigma multiplier) ->
        #: resolved per-unit stress scalars for the batched error
        #: plane.  The effective condition is derived purely from that
        #: key, so repeat units skip the dataclass rebuild and shift
        #: resolution entirely.  Bounded like the other memo caches.
        self._stress_params: dict[tuple, tuple] = {}
        #: Per-profile operand tensors :meth:`sense_batch_stacks`
        #: concatenated fresh -- the quantity cross-window stack reuse
        #: (:class:`repro.ssd.query_engine.StackCache`) avoids
        #: rebuilding.  Monotonic; consumers read deltas.
        self.restacked_tensors = 0

    # ------------------------------------------------------------------
    # Cell-level conductance
    # ------------------------------------------------------------------

    def _rows(self, wordlines: tuple[int, ...]) -> np.ndarray:
        rows = self._rows_cache.get(wordlines)
        if rows is None:
            rows = np.array(sorted(wordlines))
            rows.setflags(write=False)
            with self._rows_lock:
                if len(self._rows_cache) >= 4096:
                    self._rows_cache.clear()
                self._rows_cache[wordlines] = rows
        return rows

    @staticmethod
    def _scan_metadata(
        block: BlockArray, wordlines: tuple[int, ...]
    ) -> tuple[bool, "ProgramMode", float]:
        """Single pass over the wordline metadata (per-sense hot path),
        shared by the scalar and batched evaluation: returns
        ``(has_mlc, mode, esp_extra)`` and raises the protocol errors
        (ESP-effort mismatch, MLC/SLC mixing) both paths must report
        identically."""
        if not wordlines:
            raise ValueError("MWS requires at least one wordline")
        metadata = block.metadata
        first = metadata[wordlines[0]]
        mode = first.mode
        esp_extra = first.esp_extra
        has_mlc = mode is ProgramMode.MLC
        mixed_modes = False
        for wl in wordlines[1:]:
            meta = metadata[wl]
            if meta.mode is not mode:
                mixed_modes = True
                if meta.mode is ProgramMode.MLC:
                    has_mlc = True
            if meta.esp_extra != esp_extra:
                raise ValueError(
                    "all wordlines of one MWS must share an ESP "
                    "programming effort -- the sense applies a single "
                    "read reference (got ESP extras "
                    f"{sorted({block.wordline_esp_extra(w) for w in wordlines})})"
                )
        if has_mlc and mixed_modes:
            raise ValueError(
                "MWS cannot mix MLC and SLC-family wordlines in one sense"
            )
        return has_mlc, mode, esp_extra

    def _conduction(
        self,
        block: BlockArray,
        wordlines: tuple[int, ...],
        condition: OperatingCondition,
        *,
        vref_offset: float = 0.0,
        force_vth: bool = False,
    ) -> np.ndarray:
        """Per-bitline conduction of one string group: AND over the
        targeted wordlines' cell conduction.

        Returns packed ``uint64`` words on the error-free fast path,
        a boolean per-bitline array on the V_TH path (callers wrap
        either into a :class:`SenseOutcome`).

        ``vref_offset`` shifts the read-reference voltage -- the
        read-retry mechanism real chips expose to recover data whose
        V_TH distribution has drifted.  ``force_vth`` routes even an
        error-free packed sense through the V_TH comparison -- the
        degraded/read-retry mode fault recovery falls back to, which
        on an error-free chip is bit-identical to the packed reduce
        (the idealized distributions are fully separated at zero
        offset), just slower.
        """
        has_mlc, mode, esp_extra = self._scan_metadata(block, wordlines)
        rows = self._rows(wordlines)
        if (
            self.packed
            and not self.inject_errors
            and vref_offset == 0.0
            and not force_vth
        ):
            # Error-free conduction of a cell equals its stored bit
            # (the calibrated states are fully separated at zero
            # offset), so the string-group AND is a word-wide reduce
            # over the packed functional plane -- no V_TH touched.
            words = np.bitwise_and.reduce(block.packed_rows(rows), axis=0)
            block.note_read(len(wordlines))
            return words
        modes = {ProgramMode.MLC} if has_mlc else {mode}
        vth = block.vth[rows]
        if self.inject_errors:
            cond = replace(
                condition,
                esp_extra=esp_extra,
                pe_cycles=max(condition.pe_cycles, block.pe_cycles),
                sigma_multiplier=condition.sigma_multiplier
                * block.sigma_multiplier,
            )
        if ProgramMode.MLC in modes:
            # LSB-page sensing: the read mechanism is identical to an
            # SLC read except for the reference voltage (VREF2 between
            # the P1 and P2 states; Section 9, footnote 15).
            read_ref = self.error_model.mlc_lsb_read_ref()
            if self.inject_errors:
                vth = self.error_model.perturb_mlc(
                    vth, block.mlc_states(rows), cond, self.rng
                )
        elif self.inject_errors:
            programmed = block.programmed_rows(rows)
            vth = self.error_model.perturb(vth, programmed, cond, self.rng)
            read_ref = self.error_model.slc_shifts(cond).read_ref
        else:
            read_ref = self._error_free_read_ref(condition, esp_extra)
        conducting = vth <= read_ref + vref_offset
        block.note_read(len(wordlines))
        return conducting.all(axis=0)

    def _error_free_read_ref(
        self, condition: OperatingCondition, esp_extra: float
    ) -> float:
        """Error-free read reference: only the ESP effort moves it
        (retention/PEC/read-disturb terms vanish at zero stress).
        Cached per effort -- shared by the scalar and batched V_TH
        paths so both resolve the identical reference."""
        read_ref = self._pristine_read_ref.get(esp_extra)
        if read_ref is None:
            pristine = OperatingCondition(
                randomized=condition.randomized, esp_extra=esp_extra
            )
            read_ref = self.error_model.slc_shifts(pristine).read_ref
            self._pristine_read_ref[esp_extra] = read_ref
        return read_ref

    def _outcome(
        self,
        payload: np.ndarray,
        *,
        n_bits: int,
        wordlines: int,
        blocks: int,
    ) -> SenseOutcome:
        if payload.dtype == np.uint64:
            return SenseOutcome.from_words(
                payload, n_bits, wordlines=wordlines, blocks=blocks
            )
        return SenseOutcome.from_bits(
            payload.astype(np.uint8), wordlines=wordlines, blocks=blocks
        )

    # ------------------------------------------------------------------
    # Public sensing operations
    # ------------------------------------------------------------------

    def read_wordline(
        self,
        block: BlockArray,
        wordline: int,
        condition: OperatingCondition,
        *,
        vref_offset: float = 0.0,
        force_vth: bool = False,
    ) -> SenseOutcome:
        """Regular page read: VREF on exactly one wordline.  For MLC
        wordlines this is the LSB-page read (single reference)."""
        payload = self._conduction(
            block,
            (wordline,),
            condition,
            vref_offset=vref_offset,
            force_vth=force_vth,
        )
        return self._outcome(
            payload,
            n_bits=block.geometry.page_size_bits,
            wordlines=1,
            blocks=1,
        )

    def read_msb_wordline(
        self,
        block: BlockArray,
        wordline: int,
        condition: OperatingCondition,
    ) -> SenseOutcome:
        """MSB-page read of an MLC wordline: two references (VREF1 and
        VREF3); MSB = 1 for cells below VREF1 (E) or above VREF3 (P3)."""
        from repro.flash.ispp import ProgramMode

        if block.metadata[wordline].mode is not ProgramMode.MLC:
            raise ValueError("MSB read requires an MLC wordline")
        window = self.error_model.mlc_window()
        ref1, _, ref3 = window.read_refs
        rows = self._rows((wordline,))
        vth = block.vth[rows]
        cond = condition
        if self.inject_errors:
            vth = self.error_model.perturb_mlc(
                vth, block.mlc_states(rows), cond, self.rng
            )
        below_ref1 = vth[0] <= ref1
        above_ref3 = vth[0] > ref3
        block.note_read(2)
        return SenseOutcome.from_bits(
            (below_ref1 | above_ref3).astype(np.uint8),
            wordlines=1,
            blocks=1,
        )

    def intra_block_mws(
        self,
        block: BlockArray,
        wordlines: tuple[int, ...],
        condition: OperatingCondition,
        *,
        vref_offset: float = 0.0,
        force_vth: bool = False,
    ) -> SenseOutcome:
        """Intra-block MWS: bitwise AND of the targeted wordlines."""
        payload = self._conduction(
            block,
            tuple(wordlines),
            condition,
            vref_offset=vref_offset,
            force_vth=force_vth,
        )
        return self._outcome(
            payload,
            n_bits=block.geometry.page_size_bits,
            wordlines=len(wordlines),
            blocks=1,
        )

    def inter_block_mws(
        self,
        targets: list[tuple[BlockArray, tuple[int, ...]]],
        condition: OperatingCondition,
        *,
        vref_offset: float = 0.0,
        force_vth: bool = False,
    ) -> SenseOutcome:
        """Inter-block MWS: OR across blocks of the AND within each
        block (Equation 1).  With one wordline per block this is plain
        bitwise OR (Figure 9(b))."""
        if not targets:
            raise ValueError("inter-block MWS requires at least one target")
        acc: np.ndarray | None = None
        total_wordlines = 0
        for block, wordlines in targets:
            conduction = self._conduction(
                block,
                tuple(wordlines),
                condition,
                vref_offset=vref_offset,
                force_vth=force_vth,
            )
            total_wordlines += len(wordlines)
            acc = conduction if acc is None else (acc | conduction)
        assert acc is not None
        return self._outcome(
            acc,
            n_bits=targets[0][0].geometry.page_size_bits,
            wordlines=total_wordlines,
            blocks=len(targets),
        )

    def sense_string_groups(
        self,
        groups: list[tuple[BlockArray, StringGroup]],
        condition: OperatingCondition,
    ) -> SenseOutcome:
        """Sense arbitrary string groups in one operation (the general
        MWS form used by the command executor)."""
        targets = [(block, group.wordlines) for block, group in groups]
        return self.inter_block_mws(targets, condition)

    # ------------------------------------------------------------------
    # Batched sensing (window-at-a-time data plane)
    # ------------------------------------------------------------------

    def sense_batch(
        self,
        senses: list[list[tuple[BlockArray, tuple[int, ...]]]],
    ) -> np.ndarray:
        """Evaluate many MWS operations in one vectorized pass.

        ``senses[i]`` is the target list of one inter-block MWS (the
        same shape :meth:`inter_block_mws` takes); the returned
        ``(n_senses, n_words)`` ``uint64`` array holds one packed,
        ones-padded result row per sense, bit-identical to
        ``inter_block_mws(senses[i], ...).words``.

        Only the packed error-free plane can batch: error injection
        and VREF offsets evaluate per cell through V_TH and stay on
        the scalar path, so this raises off that plane rather than
        silently approximating.  Senses are grouped by their
        *group-size profile* (the tuple of per-block wordline counts);
        each profile group stacks its operand rows into one 3-D
        tensor and computes every string-group AND and inter-block OR
        of the group with one reduce per segment -- O(profiles) NumPy
        dispatches for the whole batch.  Metadata validation and
        per-block read-disturb accounting match the scalar path
        exactly.
        """
        stacks: list[np.ndarray] = []
        profiles: list[tuple[int, ...]] = []
        for targets in senses:
            stack, profile, reads = self.gather_sense(targets)
            for block, n_wordlines in reads:
                block.note_read(n_wordlines)
            stacks.append(stack)
            profiles.append(profile)
        return self.sense_batch_stacks(stacks, profiles)

    def gather_sense(
        self,
        targets: list[tuple[BlockArray, tuple[int, ...]]],
    ) -> tuple[
        np.ndarray,
        tuple[int, ...],
        tuple[tuple[BlockArray, int], ...],
    ]:
        """Validate one MWS operation's targets and gather its packed
        operand rows: returns ``(stack, profile, reads)`` -- the
        ``(total_rows, n_words)`` row stack, the per-block wordline
        counts, and the ``(block, n_wordlines)`` read-disturb pairs.
        Deliberately does *not* account the read disturb: callers do
        (via ``note_read``), so a memoizing caller -- the chip's
        batched command cache -- can re-account cache hits without
        re-gathering.  Shared by :meth:`sense_batch` and
        :meth:`~repro.flash.chip.NandFlashChip.execute_sense_batch`
        so validation and gathering cannot drift between them."""
        if not targets:
            raise ValueError("inter-block MWS requires at least one target")
        profile: list[int] = []
        reads: list[tuple[BlockArray, int]] = []
        rows_list: list[np.ndarray] = []
        for block, wordlines in targets:
            wordlines = tuple(wordlines)
            self._scan_metadata(block, wordlines)
            rows_list.append(block.packed_rows(self._rows(wordlines)))
            n_wordlines = len(wordlines)
            profile.append(n_wordlines)
            reads.append((block, n_wordlines))
        stack = (
            rows_list[0]
            if len(rows_list) == 1
            else np.concatenate(rows_list, axis=0)
        )
        return stack, tuple(profile), tuple(reads)

    def sense_batch_stacks(
        self,
        stacks: list[np.ndarray],
        profiles: list[tuple[int, ...]],
    ) -> np.ndarray:
        """:meth:`sense_batch` minus validation and gathering:
        ``stacks[i]`` is one sense's operand rows already stacked into
        a ``(total_rows, n_words)`` array and ``profiles[i]`` its
        per-block wordline counts.  The chip's batched entry point
        memoizes gather/validation per command (revalidated via block
        ``layout_version``) and calls this directly, so steady-state
        windows pay only the per-profile tensor reduces."""
        if not (self.packed and not self.inject_errors):
            raise RuntimeError(
                "sense_batch requires the packed error-free plane; "
                "error injection and packed=False evaluate per sense"
            )
        n = len(stacks)
        if n == 0:
            raise ValueError("sense_batch requires at least one sense")
        groups: dict[tuple[int, ...], list[int]] = {}
        for i, profile in enumerate(profiles):
            group = groups.get(profile)
            if group is None:
                groups[profile] = [i]
            else:
                group.append(i)
        n_words = stacks[0].shape[1]
        out = np.empty((n, n_words), dtype=np.uint64)
        self.restacked_tensors += len(groups)
        for profile, members in groups.items():
            total_rows = sum(profile)
            tensor = np.concatenate(
                [stacks[i] for i in members], axis=0
            ).reshape(len(members), total_rows, n_words)
            if len(profile) == 1:
                # Pure intra-block AND (one string group per sense).
                result = np.bitwise_and.reduce(tensor, axis=1)
            elif total_rows == len(profile):
                # One wordline per block: plain inter-block OR.
                result = np.bitwise_or.reduce(tensor, axis=1)
            else:
                # General OR-of-ANDs (Equation 1): AND each group
                # segment, OR the segment results.
                result = None
                lo = 0
                for size in profile:
                    segment = (
                        tensor[:, lo]
                        if size == 1
                        else np.bitwise_and.reduce(
                            tensor[:, lo : lo + size], axis=1
                        )
                    )
                    result = (
                        segment if result is None else result | segment
                    )
                    lo += size
            out[np.asarray(members)] = result
        return out

    # ------------------------------------------------------------------
    # Batched V_TH error plane
    # ------------------------------------------------------------------

    def sense_batch_vth(
        self,
        senses: list[list[tuple[BlockArray, tuple[int, ...]]]],
        conditions: list[OperatingCondition],
        *,
        vref_offset: float = 0.0,
        force_vth: bool = False,
    ) -> np.ndarray | None:
        """Evaluate many MWS operations through the V_TH error plane
        in one vectorized pass.

        ``senses[i]`` is the target list of one inter-block MWS and
        ``conditions[i]`` its effective operating condition (the chip
        resolves per-command randomization surcharges before calling
        in).  Returns an ``(n_senses, page_bits)`` ``uint8`` matrix
        whose row ``i`` is bit-identical to
        ``inter_block_mws(senses[i], conditions[i], ...).bits`` run in
        sequence -- *including the stochastic error draws*: the batch
        draws one Gaussian block for the whole window and splits it in
        the exact (sense, block-target) order the scalar loop draws
        in, so the chip's RNG stream stays schedule-identical and the
        corrupted bits are the same bits.  Float identity holds
        because every perturbation/compare runs grouped by the exact
        per-unit stress scalars -- elementwise the same float32
        operations in the same order as :meth:`ErrorModel.perturb`.

        Returns ``None`` when any target is MLC-programmed (the
        multi-reference MLC draw stays per sense; callers fall back to
        the scalar loop *before* any RNG or read-disturb side effect).
        Pure SLC/ESP windows -- every reliability sweep shape -- stay
        on the batch plane.
        """
        schedule = self.prepare_batch_vth(
            senses,
            conditions,
            vref_offset=vref_offset,
            force_vth=force_vth,
        )
        if schedule is None:
            return None
        return self.run_batch_vth(schedule)

    def prepare_batch_vth(
        self,
        senses: list[list[tuple[BlockArray, tuple[int, ...]]]],
        conditions: list[OperatingCondition],
        *,
        vref_offset: float = 0.0,
        force_vth: bool = False,
    ) -> VthBatchSchedule | None:
        """Resolve the deterministic half of a batched V_TH window
        into a reusable :class:`VthBatchSchedule` (or ``None`` on MLC
        fallback, before any side effect).  Everything that does not
        depend on the stochastic draw -- flattening, stress scalars,
        the perturbed-base tensors, read references, noise layout --
        happens here; the chip caches the schedule per command window
        and revalidates it against block ``layout_version``s, so
        repeated reliability windows skip straight to
        :meth:`run_batch_vth`.
        """
        if (
            self.packed
            and not self.inject_errors
            and vref_offset == 0.0
            and not force_vth
        ):
            raise RuntimeError(
                "sense_batch_vth is the V_TH error plane; the packed "
                "error-free plane batches through sense_batch"
            )
        # ------------------------------------------------------------
        # 1. Validate, flatten into (sense, block-target) units in
        #    scalar execution order, and resolve per-unit stress
        #    scalars in the same pass (the order is what lets the one
        #    Gaussian draw split on the scalar schedule).  MLC
        #    fallback happens before any draw or read-disturb side
        #    effect -- everything mutated here is call-local except
        #    the stress-scalar memo, which is value-pure.
        #
        #    Units group by tensor *shape* only -- (row count,
        #    noise-widened?).  The stress scalars themselves ride
        #    along as per-unit float32 parameter columns broadcast
        #    over the (U, R, C) group tensor: the scalar path feeds
        #    Python floats into float32 NumPy ops, which converts
        #    them to float32 first, so a float32 parameter column
        #    produces the elementwise-identical result (the
        #    read-reference compare keeps float64 columns -- NumPy
        #    compares float32 data against a Python float exactly,
        #    without narrowing it).  Per-block process variation
        #    (``sigma_multiplier``) therefore costs no group
        #    fragmentation.
        #
        #    The memo keys on ``id(condition)``: chips intern their
        #    effective-condition variants, and the entry pins the
        #    condition object, so a live key match can only be the
        #    same object (the ``is`` check makes that explicit).
        # ------------------------------------------------------------
        units: list[tuple[int, BlockArray, tuple[int, ...], float]] = []
        sense_starts: list[int] = []
        read_counts: dict[int, list] = {}
        inject = self.inject_errors
        model = self.error_model
        slc = model.calibration.slc
        stress_memo = self._stress_params
        groups: dict[tuple[int, bool], list[int]] = {}
        unit_rows: list[np.ndarray] = []
        params: list[tuple] = []
        noise_at: list[int] = []
        noise_rows = 0
        for index, targets in enumerate(senses):
            if not targets:
                raise ValueError(
                    "inter-block MWS requires at least one target"
                )
            sense_starts.append(len(units))
            condition = conditions[index]
            for block, wordlines in targets:
                wordlines = tuple(wordlines)
                has_mlc, _, esp_extra = self._scan_metadata(
                    block, wordlines
                )
                if has_mlc:
                    return None
                ordinal = len(units)
                units.append((index, block, wordlines, esp_extra))
                n_rows = len(wordlines)
                entry = read_counts.get(id(block))
                if entry is None:
                    read_counts[id(block)] = [block, n_rows]
                else:
                    entry[1] += n_rows
                unit_rows.append(self._rows(wordlines))
                if inject:
                    mkey = (
                        id(condition),
                        esp_extra,
                        block.pe_cycles,
                        block.sigma_multiplier,
                    )
                    cached = stress_memo.get(mkey)
                    if cached is not None and cached[0] is condition:
                        unit_params = cached[1]
                    else:
                        cond = replace(
                            condition,
                            esp_extra=esp_extra,
                            pe_cycles=max(
                                condition.pe_cycles, block.pe_cycles
                            ),
                            sigma_multiplier=condition.sigma_multiplier
                            * block.sigma_multiplier,
                        )
                        shifts = model.slc_shifts(cond)
                        widen = math.sqrt(
                            max(shifts.sigma_factor**2 - 1.0, 0.0)
                        )
                        unit_params = (
                            shifts.retention_down,
                            shifts.erased_up,
                            widen,
                            slc.programmed_sigma
                            * (
                                1.0
                                - slc.esp_sigma_shrink * cond.esp_extra
                            ),
                            slc.erased_sigma,
                            shifts.read_ref,
                        )
                        if len(stress_memo) < 4096:
                            stress_memo[mkey] = (condition, unit_params)
                    params.append(unit_params)
                    widened = unit_params[2] > 0.0
                    key = (n_rows, widened)
                    noise_at.append(noise_rows if widened else -1)
                    if widened:
                        noise_rows += n_rows
                else:
                    params.append(
                        (self._error_free_read_ref(condition, esp_extra),)
                    )
                    key = (n_rows, False)
                    noise_at.append(-1)
                groups.setdefault(key, []).append(ordinal)
        # ------------------------------------------------------------
        # 2. Precompute per shape group as one 3-D tensor op.  The
        #    shift-perturbed base, base sigma, and read reference are
        #    draw-independent, so noise-free groups produce their
        #    final conductance rows here and noisy groups reduce to
        #    one fused noise-add + compare per run.
        # ------------------------------------------------------------
        page_bits = units[0][1].vth.shape[1]
        det_conducting = np.empty(
            (len(units), page_bits), dtype=bool
        )
        noisy_groups: list[tuple] = []
        for (n_rows, widened), members in groups.items():
            vth = np.stack(
                [units[i][1].vth[unit_rows[i]] for i in members]
            )
            if inject:
                column = lambda j, dt: np.array(  # noqa: E731
                    [params[i][j] for i in members], dtype=dt
                )[:, None, None]
                # One unpack for the whole group: gather the packed
                # ground-truth rows, unpack as a single 2-D matrix,
                # and mask programmed (stored-0) cells -- elementwise
                # the same as per-unit ``programmed_rows``.
                packed = np.stack(
                    [
                        units[i][1].packed_rows(unit_rows[i])
                        for i in members
                    ]
                )
                programmed = (
                    unpack_rows(
                        packed.reshape(-1, packed.shape[2]), page_bits
                    ).reshape(len(members), n_rows, page_bits)
                    == 0
                )
                out = vth.astype(np.float32, copy=True)
                # out[p] -= ret; out[~p] += eu, fused: x - (-y) == x + y
                out -= np.where(
                    programmed,
                    column(0, np.float32),
                    -column(1, np.float32),
                )
                read_ref_col = (
                    column(5, np.float64) + vref_offset
                )
                if widened:
                    gather = np.concatenate(
                        [
                            np.arange(noise_at[i], noise_at[i] + n_rows)
                            for i in members
                        ]
                    )
                    base_sigma = np.where(
                        programmed,
                        column(3, np.float32),
                        column(4, np.float32),
                    )
                    noisy_groups.append(
                        (
                            np.asarray(members),
                            gather,
                            out,
                            base_sigma,
                            column(2, np.float32),
                            read_ref_col,
                        )
                    )
                    continue
            else:
                out = vth
                read_ref_col = (
                    np.array(
                        [params[i][0] for i in members], dtype=np.float64
                    )[:, None, None]
                    + vref_offset
                )
            conducting = out <= read_ref_col
            det_conducting[np.asarray(members)] = conducting.all(axis=1)
        return VthBatchSchedule(
            page_bits,
            noise_rows,
            sense_starts,
            [tuple(entry) for entry in read_counts.values()],
            det_conducting,
            noisy_groups,
        )

    def run_batch_vth(self, schedule: VthBatchSchedule) -> np.ndarray:
        """Execute one prepared V_TH window.

        Draws the window's Gaussian block -- exactly the scalar
        loop's draw schedule, one ``standard_normal`` split per noisy
        unit in (sense, target) order -- finishes the noisy groups
        against their precomputed tensors (``base + noise * sigma *
        widen`` is the identical float32 expression the scalar
        ``perturb`` evaluates), ORs units per sense with a segmented
        reduction that matches the scalar accumulation order, and
        charges read disturb (``note_read`` is a pure counter, so one
        aggregated bump per block equals the per-target bumps).
        Every run re-perturbs with fresh noise, so repeated windows
        flip fresh bits just as the scalar loop would.
        """
        page_bits = schedule.page_bits
        if schedule.noise_rows:
            noise_all = self.rng.standard_normal(
                (schedule.noise_rows, page_bits)
            ).astype(np.float32)
            unit_conducting = schedule.det_conducting.copy()
            for (
                members,
                gather,
                base,
                base_sigma,
                widen_col,
                ref_col,
            ) in schedule.noisy_groups:
                noise = noise_all[gather].reshape(
                    len(members), base.shape[1], page_bits
                )
                out = base + noise * base_sigma * widen_col
                unit_conducting[members] = (out <= ref_col).all(axis=1)
        else:
            unit_conducting = schedule.det_conducting
        out_bits = np.bitwise_or.reduceat(
            unit_conducting, schedule.sense_starts, axis=0
        ).astype(np.uint8)
        for block, count in schedule.read_counts:
            block.note_read(count)
        return out_bits
