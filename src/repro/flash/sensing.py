"""Sensing: regular reads and multi-wordline sensing (MWS).

The read mechanism (Section 2.1, Figure 2) senses the conductance of
NAND strings.  A cell conducts when VREF exceeds its V_TH; non-target
cells always conduct because they receive VPASS.  Consequences
(Section 4.1, Figure 9):

* applying VREF to several wordlines of the *same* string makes the
  string conduct only if **every** targeted cell conducts ->
  **bitwise AND** of the targeted wordlines (intra-block MWS);
* applying VREF to wordlines in *different* blocks (strings sharing
  bitlines) discharges the bitline if **any** string conducts ->
  **bitwise OR** across the blocks (inter-block MWS);
* combining both senses computes OR-of-ANDs in one shot (Equation 1).

Sensing is where bit errors happen: the engine perturbs the stored
V_TH with the stress condition before comparing against VREF, so MWS
results carry realistic errors unless the data was ESP-programmed.

Two evaluation paths implement the same semantics:

* the **packed fast path** (``packed=True``, error injection off, no
  VREF offset): error-free conduction of a cell equals its stored bit,
  so the string-group AND is a single ``np.bitwise_and.reduce`` over
  the block's packed ``uint64`` word rows -- 64 cells per machine
  word, no V_TH materialization at all;
* the **V_TH path**: slices the block's float32 V_TH matrix, applies
  the stress perturbation (when injecting errors) and compares against
  the read reference cell by cell.  Error injection, read-retry VREF
  offsets, and the ``packed=False`` compatibility mode all take this
  path, so every reliability figure reproduces unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

import numpy as np

from repro.flash.array import BlockArray
from repro.flash.errors import ErrorModel, OperatingCondition
from repro.flash.geometry import StringGroup
from repro.flash.packing import pack_bits, unpack_words


class SenseMode(enum.Enum):
    """Latch initialization behaviour of a sense (Figures 3 and 4)."""

    NORMAL = "normal"
    INVERSE = "inverse"


@dataclass(frozen=True)
class SenseOutcome:
    """Raw evaluation result of one sensing operation (pre-latch).

    The result is held natively in whichever representation the
    engine produced -- packed ``uint64`` words or unpacked 0/1 bits --
    and converted lazily (then cached) when the other view is asked
    for, so the packed pipeline never round-trips through bytes.
    """

    wordlines_sensed: int
    blocks_sensed: int
    n_bits: int
    _bits: np.ndarray | None = field(default=None, repr=False)
    _words: np.ndarray | None = field(default=None, repr=False)

    @classmethod
    def from_words(
        cls, words: np.ndarray, n_bits: int, *, wordlines: int, blocks: int
    ) -> "SenseOutcome":
        return cls(
            wordlines_sensed=wordlines,
            blocks_sensed=blocks,
            n_bits=n_bits,
            _words=words,
        )

    @classmethod
    def from_bits(
        cls, bits: np.ndarray, *, wordlines: int, blocks: int
    ) -> "SenseOutcome":
        bits = np.asarray(bits, dtype=np.uint8)
        return cls(
            wordlines_sensed=wordlines,
            blocks_sensed=blocks,
            n_bits=bits.size,
            _bits=bits,
        )

    @property
    def bits(self) -> np.ndarray:
        """Unpacked 0/1 result (uint8)."""
        if self._bits is None:
            object.__setattr__(
                self, "_bits", unpack_words(self._words, self.n_bits)
            )
        return self._bits

    @property
    def words(self) -> np.ndarray:
        """Packed uint64 result (ones-padded)."""
        if self._words is None:
            object.__setattr__(self, "_words", pack_bits(self._bits))
        return self._words


class SensingEngine:
    """Evaluates string conductance for reads and MWS operations."""

    def __init__(
        self,
        error_model: ErrorModel,
        *,
        rng: np.random.Generator | None = None,
        inject_errors: bool = True,
        packed: bool = True,
    ) -> None:
        self.error_model = error_model
        self.rng = rng or np.random.default_rng(0)
        self.inject_errors = inject_errors
        #: Use the packed word fast path for error-free senses.  With
        #: ``packed=False`` even error-free senses evaluate through the
        #: V_TH matrix -- the pre-packing behaviour, kept as an oracle
        #: for equivalence tests and benchmarks.
        self.packed = packed
        # Error-free sensing resolves the read reference from a
        # pristine condition whose only live input is the ESP effort;
        # cache it per effort to keep the per-sense hot path lean.
        self._pristine_read_ref: dict[float, float] = {}
        #: wordline tuple -> sorted row-index array (reused across
        #: senses instead of re-sorting/re-allocating per call).
        self._rows_cache: dict[tuple[int, ...], np.ndarray] = {}

    # ------------------------------------------------------------------
    # Cell-level conductance
    # ------------------------------------------------------------------

    def _rows(self, wordlines: tuple[int, ...]) -> np.ndarray:
        rows = self._rows_cache.get(wordlines)
        if rows is None:
            if len(self._rows_cache) >= 4096:
                self._rows_cache.clear()
            rows = np.array(sorted(wordlines))
            self._rows_cache[wordlines] = rows
        return rows

    def _conduction(
        self,
        block: BlockArray,
        wordlines: tuple[int, ...],
        condition: OperatingCondition,
        *,
        vref_offset: float = 0.0,
    ) -> np.ndarray:
        """Per-bitline conduction of one string group: AND over the
        targeted wordlines' cell conduction.

        Returns packed ``uint64`` words on the error-free fast path,
        a boolean per-bitline array on the V_TH path (callers wrap
        either into a :class:`SenseOutcome`).

        ``vref_offset`` shifts the read-reference voltage -- the
        read-retry mechanism real chips expose to recover data whose
        V_TH distribution has drifted.
        """
        if not wordlines:
            raise ValueError("MWS requires at least one wordline")
        from repro.flash.ispp import ProgramMode

        # Single pass over the wordline metadata (per-sense hot path).
        metadata = block.metadata
        first = metadata[wordlines[0]]
        mode = first.mode
        esp_extra = first.esp_extra
        has_mlc = mode is ProgramMode.MLC
        mixed_modes = False
        for wl in wordlines[1:]:
            meta = metadata[wl]
            if meta.mode is not mode:
                mixed_modes = True
                if meta.mode is ProgramMode.MLC:
                    has_mlc = True
            if meta.esp_extra != esp_extra:
                raise ValueError(
                    "all wordlines of one MWS must share an ESP "
                    "programming effort -- the sense applies a single "
                    "read reference (got ESP extras "
                    f"{sorted({block.wordline_esp_extra(w) for w in wordlines})})"
                )
        if has_mlc and mixed_modes:
            raise ValueError(
                "MWS cannot mix MLC and SLC-family wordlines in one sense"
            )
        rows = self._rows(wordlines)
        if (
            self.packed
            and not self.inject_errors
            and vref_offset == 0.0
        ):
            # Error-free conduction of a cell equals its stored bit
            # (the calibrated states are fully separated at zero
            # offset), so the string-group AND is a word-wide reduce
            # over the packed functional plane -- no V_TH touched.
            words = np.bitwise_and.reduce(block.packed_rows(rows), axis=0)
            block.note_read(len(wordlines))
            return words
        modes = {ProgramMode.MLC} if has_mlc else {mode}
        vth = block.vth[rows]
        if self.inject_errors:
            cond = replace(
                condition,
                esp_extra=esp_extra,
                pe_cycles=max(condition.pe_cycles, block.pe_cycles),
                sigma_multiplier=condition.sigma_multiplier
                * block.sigma_multiplier,
            )
        if ProgramMode.MLC in modes:
            # LSB-page sensing: the read mechanism is identical to an
            # SLC read except for the reference voltage (VREF2 between
            # the P1 and P2 states; Section 9, footnote 15).
            read_ref = self.error_model.mlc_lsb_read_ref()
            if self.inject_errors:
                vth = self.error_model.perturb_mlc(
                    vth, block.mlc_states(rows), cond, self.rng
                )
        elif self.inject_errors:
            programmed = block.programmed_rows(rows)
            vth = self.error_model.perturb(vth, programmed, cond, self.rng)
            read_ref = self.error_model.slc_shifts(cond).read_ref
        else:
            # Error-free: only the ESP effort moves the reference
            # (retention/PEC/read-disturb terms vanish at zero stress).
            read_ref = self._pristine_read_ref.get(esp_extra)
            if read_ref is None:
                pristine = OperatingCondition(
                    randomized=condition.randomized, esp_extra=esp_extra
                )
                read_ref = self.error_model.slc_shifts(pristine).read_ref
                self._pristine_read_ref[esp_extra] = read_ref
        conducting = vth <= read_ref + vref_offset
        block.note_read(len(wordlines))
        return conducting.all(axis=0)

    def _outcome(
        self,
        payload: np.ndarray,
        *,
        n_bits: int,
        wordlines: int,
        blocks: int,
    ) -> SenseOutcome:
        if payload.dtype == np.uint64:
            return SenseOutcome.from_words(
                payload, n_bits, wordlines=wordlines, blocks=blocks
            )
        return SenseOutcome.from_bits(
            payload.astype(np.uint8), wordlines=wordlines, blocks=blocks
        )

    # ------------------------------------------------------------------
    # Public sensing operations
    # ------------------------------------------------------------------

    def read_wordline(
        self,
        block: BlockArray,
        wordline: int,
        condition: OperatingCondition,
        *,
        vref_offset: float = 0.0,
    ) -> SenseOutcome:
        """Regular page read: VREF on exactly one wordline.  For MLC
        wordlines this is the LSB-page read (single reference)."""
        payload = self._conduction(
            block, (wordline,), condition, vref_offset=vref_offset
        )
        return self._outcome(
            payload,
            n_bits=block.geometry.page_size_bits,
            wordlines=1,
            blocks=1,
        )

    def read_msb_wordline(
        self,
        block: BlockArray,
        wordline: int,
        condition: OperatingCondition,
    ) -> SenseOutcome:
        """MSB-page read of an MLC wordline: two references (VREF1 and
        VREF3); MSB = 1 for cells below VREF1 (E) or above VREF3 (P3)."""
        from repro.flash.ispp import ProgramMode

        if block.metadata[wordline].mode is not ProgramMode.MLC:
            raise ValueError("MSB read requires an MLC wordline")
        window = self.error_model.mlc_window()
        ref1, _, ref3 = window.read_refs
        rows = self._rows((wordline,))
        vth = block.vth[rows]
        cond = condition
        if self.inject_errors:
            vth = self.error_model.perturb_mlc(
                vth, block.mlc_states(rows), cond, self.rng
            )
        below_ref1 = vth[0] <= ref1
        above_ref3 = vth[0] > ref3
        block.note_read(2)
        return SenseOutcome.from_bits(
            (below_ref1 | above_ref3).astype(np.uint8),
            wordlines=1,
            blocks=1,
        )

    def intra_block_mws(
        self,
        block: BlockArray,
        wordlines: tuple[int, ...],
        condition: OperatingCondition,
        *,
        vref_offset: float = 0.0,
    ) -> SenseOutcome:
        """Intra-block MWS: bitwise AND of the targeted wordlines."""
        payload = self._conduction(
            block, tuple(wordlines), condition, vref_offset=vref_offset
        )
        return self._outcome(
            payload,
            n_bits=block.geometry.page_size_bits,
            wordlines=len(wordlines),
            blocks=1,
        )

    def inter_block_mws(
        self,
        targets: list[tuple[BlockArray, tuple[int, ...]]],
        condition: OperatingCondition,
        *,
        vref_offset: float = 0.0,
    ) -> SenseOutcome:
        """Inter-block MWS: OR across blocks of the AND within each
        block (Equation 1).  With one wordline per block this is plain
        bitwise OR (Figure 9(b))."""
        if not targets:
            raise ValueError("inter-block MWS requires at least one target")
        acc: np.ndarray | None = None
        total_wordlines = 0
        for block, wordlines in targets:
            conduction = self._conduction(
                block, tuple(wordlines), condition, vref_offset=vref_offset
            )
            total_wordlines += len(wordlines)
            acc = conduction if acc is None else (acc | conduction)
        assert acc is not None
        return self._outcome(
            acc,
            n_bits=targets[0][0].geometry.page_size_bits,
            wordlines=total_wordlines,
            blocks=len(targets),
        )

    def sense_string_groups(
        self,
        groups: list[tuple[BlockArray, StringGroup]],
        condition: OperatingCondition,
    ) -> SenseOutcome:
        """Sense arbitrary string groups in one operation (the general
        MWS form used by the command executor)."""
        targets = [(block, group.wordlines) for block, group in groups]
        return self.inter_block_mws(targets, condition)
