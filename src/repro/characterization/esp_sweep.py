"""Figure 11 campaign: RBER vs ESP programming latency.

Sweeps tESP from 1.0x to 2.0x tPROG at the worst-case condition
(10K P/E cycles, 1-year retention, no randomization) and reports the
worst / median / best block of the population -- the three series of
Figure 11 -- plus the zero-error knee.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.characterization.testbed import ChipPopulation
from repro.flash.errors import ErrorModel, OperatingCondition

TESP_GRID = (1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0)


@dataclass
class EspSweepResult:
    tesp_grid: tuple[float, ...]
    worst: list[float] = field(default_factory=list)
    median: list[float] = field(default_factory=list)
    best: list[float] = field(default_factory=list)
    zero_error_threshold: float = 2.07e-12

    def zero_error_knee(self) -> float:
        """Smallest tESP multiple with worst-block RBER below the
        zero-observed-errors threshold (paper: 1.9x)."""
        for tesp, rber in zip(self.tesp_grid, self.worst):
            if rber < self.zero_error_threshold:
                return tesp
        raise ValueError("no zero-error point in the sweep")

    def median_reduction_at(self, tesp: float) -> float:
        """Median-block RBER improvement factor at a given tESP
        (paper: ~10x at 1.6x)."""
        base = self.median[0]
        index = self.tesp_grid.index(tesp)
        return base / self.median[index]


def esp_latency_sweep(
    *,
    population: ChipPopulation | None = None,
    pe_cycles: int = 10_000,
    retention_months: float = 12.0,
) -> EspSweepResult:
    """Run the Figure 11 sweep."""
    population = population or ChipPopulation()
    model = ErrorModel(population.calibration)
    result = EspSweepResult(tesp_grid=TESP_GRID)
    quantiles = {
        "worst": population.worst_block().sigma_multiplier,
        "median": population.median_block().sigma_multiplier,
        "best": population.best_block().sigma_multiplier,
    }
    for tesp in TESP_GRID:
        extra = tesp - 1.0
        for name, multiplier in quantiles.items():
            condition = OperatingCondition(
                pe_cycles=pe_cycles,
                retention_months=retention_months,
                randomized=False,
                esp_extra=extra,
                sigma_multiplier=multiplier,
            )
            getattr(result, name).append(model.slc_rber(condition))
    return result
