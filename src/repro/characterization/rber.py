"""Figure 8 campaign: RBER vs P/E cycles, retention, mode, randomization.

Measures the population-average RBER over the paper's grid: SLC and
MLC programming, randomization on/off, P/E cycles {0, 1K, 2K, 3K, 6K,
10K}, retention ages {0, 1, 2, 3, 6, 12} months, under the worst-case
checkered data pattern (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.characterization.testbed import ChipPopulation
from repro.flash.errors import ErrorModel, OperatingCondition

PEC_GRID = (0, 1_000, 2_000, 3_000, 6_000, 10_000)
RETENTION_GRID_MONTHS = (0.0, 1.0, 2.0, 3.0, 6.0, 12.0)


@dataclass
class RberGrid:
    """Average RBER per (PEC, retention) cell for one mode/randomization."""

    mode: str
    randomized: bool
    pec_grid: tuple[int, ...] = PEC_GRID
    retention_grid: tuple[float, ...] = RETENTION_GRID_MONTHS
    values: dict[tuple[int, float], float] = field(default_factory=dict)

    def at(self, pec: int, months: float) -> float:
        return self.values[(pec, months)]

    def series_by_pec(self) -> dict[int, list[float]]:
        """Retention series per P/E-cycle count -- the curves of one
        Figure 8 panel."""
        return {
            pec: [self.values[(pec, m)] for m in self.retention_grid]
            for pec in self.pec_grid
        }

    def mean(self) -> float:
        return sum(self.values.values()) / len(self.values)

    def max(self) -> float:
        return max(self.values.values())

    def min(self) -> float:
        return min(self.values.values())


def measure_rber_grid(
    mode: str,
    randomized: bool,
    *,
    population: ChipPopulation | None = None,
    n_blocks: int = 64,
    error_model: ErrorModel | None = None,
) -> RberGrid:
    """Run the Figure 8 campaign for one (mode, randomization) panel.

    Averages the closed-form RBER over a block subsample of the chip
    population (process variation enters through each block's sigma
    multiplier), mirroring how the paper averages over 3,686,400
    measured wordlines.
    """
    population = population or ChipPopulation()
    model = error_model or ErrorModel(population.calibration)
    blocks = population.subsample(n_blocks, seed=8)
    grid = RberGrid(mode=mode, randomized=randomized)
    for pec in grid.pec_grid:
        for months in grid.retention_grid:
            total = 0.0
            for block in blocks:
                condition = OperatingCondition(
                    pe_cycles=pec,
                    retention_months=months,
                    randomized=randomized,
                    sigma_multiplier=block.sigma_multiplier,
                )
                total += model.rber(mode, condition)
            grid.values[(pec, months)] = total / len(blocks)
    return grid


def randomization_penalty(
    mode: str, *, population: ChipPopulation | None = None, n_blocks: int = 64
) -> float:
    """Average RBER ratio without/with randomization (paper: 1.91x for
    SLC, 4.92x for MLC)."""
    population = population or ChipPopulation()
    with_rand = measure_rber_grid(
        mode, True, population=population, n_blocks=n_blocks
    )
    without = measure_rber_grid(
        mode, False, population=population, n_blocks=n_blocks
    )
    return without.mean() / with_rand.mean()
