"""Figure 14 campaign: inter-block MWS power vs activated blocks.

Reports power normalized to a regular page read, alongside the erase
and program reference levels the figure draws, and the energy
comparison against serial reads (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flash.power import PowerModel
from repro.flash.timing import TimingModel

BLOCK_GRID = (1, 2, 3, 4, 5)


@dataclass(frozen=True)
class MwsPowerPoint:
    n_blocks: int
    power_factor: float
    energy_vs_serial_reads: float


def mws_power_series(
    grid: tuple[int, ...] = BLOCK_GRID,
) -> tuple[list[MwsPowerPoint], float, float]:
    """(series, erase_factor, program_factor).

    Each point gives the normalized power of an inter-block MWS on
    ``n_blocks`` (one wordline per block, the worst case the paper
    measures) and the energy of that MWS relative to reading the same
    wordlines serially."""
    power = PowerModel()
    timing = TimingModel()
    t_read = timing.t_read_us
    series = []
    for n in grid:
        factor = power.inter_block_mws_power_factor(n)
        t_mws = timing.t_mws_us(n, n_blocks=n)
        mws_energy = power.energy_nj(factor, t_mws)
        serial_energy = n * power.read_energy_nj(t_read)
        series.append(
            MwsPowerPoint(
                n_blocks=n,
                power_factor=factor,
                energy_vs_serial_reads=mws_energy / serial_energy,
            )
        )
    return series, power.erase_power_factor(), power.program_power_factor()
