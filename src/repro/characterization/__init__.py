"""Real-device characterization, in simulation (paper Section 5).

The paper characterizes 160 48-layer 3D TLC chips on an FPGA testbed
with temperature-accelerated retention.  This package reproduces the
same campaigns against the simulated chip population: RBER grids
(Fig. 8), the ESP latency/reliability trade-off (Fig. 11), MWS latency
(Figs. 12-13), MWS power (Fig. 14), and the functional zero-error
validation.
"""

from repro.characterization.testbed import BlockSample, ChipPopulation
from repro.characterization.rber import (
    RberGrid,
    measure_rber_grid,
    randomization_penalty,
)
from repro.characterization.esp_sweep import EspSweepResult, esp_latency_sweep
from repro.characterization.functional_rber import (
    FunctionalRber,
    measure_functional_rber,
)
from repro.characterization.mws_latency import (
    inter_block_latency_series,
    intra_block_latency_series,
    validate_mws_zero_errors,
)
from repro.characterization.power_sweep import mws_power_series

__all__ = [
    "BlockSample",
    "ChipPopulation",
    "EspSweepResult",
    "FunctionalRber",
    "RberGrid",
    "esp_latency_sweep",
    "measure_functional_rber",
    "inter_block_latency_series",
    "intra_block_latency_series",
    "measure_rber_grid",
    "mws_power_series",
    "randomization_penalty",
    "validate_mws_zero_errors",
]
