"""Monte-Carlo RBER measurement on the functional chip model.

The closed-form RBER curves (Figures 8 and 11) come from Gaussian
tail mass; this module measures RBER the way the paper's testbed does
-- program real (simulated) cells, stress them, read them back, count
mismatches -- and the cross-validation test pins the two paths to
each other.  This is the link that lets the functional layer's bit
errors be trusted as samples of the calibrated statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.chip import NandFlashChip
from repro.flash.errors import ErrorModel, OperatingCondition
from repro.flash.geometry import ChipGeometry, WordlineAddress
from repro.flash.ispp import ProgramMode


@dataclass(frozen=True)
class FunctionalRber:
    """Outcome of one Monte-Carlo RBER measurement."""

    bits_measured: int
    bit_errors: int
    measured_rber: float
    analytic_rber: float

    @property
    def ratio(self) -> float:
        if self.analytic_rber == 0:
            raise ZeroDivisionError("analytic RBER is zero")
        return self.measured_rber / self.analytic_rber


def measure_functional_rber(
    condition: OperatingCondition,
    *,
    mode: ProgramMode = ProgramMode.SLC,
    esp_extra: float = 0.0,
    page_bits: int = 65536,
    n_wordlines: int = 8,
    seed: int = 0,
) -> FunctionalRber:
    """Program, stress and read ``n_wordlines`` pages; count errors.

    Pages hold balanced random data without randomization (the
    characterization regime); the analytic reference is the closed-
    form RBER at the same condition.
    """
    geometry = ChipGeometry(
        planes_per_die=1,
        blocks_per_plane=max(2, n_wordlines // 8 + 1),
        subblocks_per_block=1,
        wordlines_per_string=max(8, n_wordlines),
        page_size_bits=page_bits,
    )
    chip = NandFlashChip(geometry, inject_errors=True, seed=seed)
    chip.set_condition(condition)
    rng = np.random.default_rng(seed + 1)

    errors = 0
    total = 0
    for wl in range(n_wordlines):
        address = WordlineAddress(0, 0, 0, wl)
        data = rng.integers(0, 2, page_bits, dtype=np.uint8)
        chip.program_page(
            address,
            data,
            mode=mode,
            esp_extra=esp_extra,
            randomize=False,
        )
        sensed = chip.read_page(address)
        errors += int((sensed != data).sum())
        total += page_bits

    model = ErrorModel(chip.calibration)
    analytic_condition = condition
    if mode is ProgramMode.ESP:
        from dataclasses import replace

        analytic_condition = replace(condition, esp_extra=esp_extra)
    analytic = model.rber(
        "esp" if mode is ProgramMode.ESP else "slc", analytic_condition
    )
    return FunctionalRber(
        bits_measured=total,
        bit_errors=errors,
        measured_rber=errors / total,
        analytic_rber=analytic,
    )
