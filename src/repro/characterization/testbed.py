"""Simulated chip population and testing infrastructure.

The paper tests 160 chips from five wafers, 120 randomly chosen blocks
per chip, every page of every chosen block (Section 5.1, following
JEDEC JESD47/JESD22-A117 sampling guidance).  We reproduce the
population structure: per-chip and per-block process variation as
multiplicative factors on the V_TH sigma, seeded deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.calibration import DEFAULT_CALIBRATION, FlashCalibration


@dataclass(frozen=True)
class BlockSample:
    """One sampled block's identity and process quality."""

    chip: int
    wafer: int
    block: int
    sigma_multiplier: float


class ChipPopulation:
    """A population of simulated chips with process variation.

    ``sigma_multiplier`` per block combines wafer-level, chip-level and
    block-level lognormal variation; the calibration pins the
    best/median/worst quantiles that Figure 11 plots.
    """

    def __init__(
        self,
        n_chips: int = 160,
        n_wafers: int = 5,
        blocks_per_chip: int = 120,
        *,
        calibration: FlashCalibration | None = None,
        seed: int = 2022,
    ) -> None:
        if n_chips < 1 or n_wafers < 1 or blocks_per_chip < 1:
            raise ValueError("population dimensions must be >= 1")
        self.calibration = calibration or DEFAULT_CALIBRATION
        self.n_chips = n_chips
        self.n_wafers = n_wafers
        self.blocks_per_chip = blocks_per_chip
        rng = np.random.default_rng(seed)
        q = self.calibration.quality
        # Split the lognormal budget across wafer/chip/block levels so
        # the population extremes land on the calibrated worst/best
        # block quantiles (the +-3.5 sigma tail of the combined
        # lognormal reaches ~ q.sigma_multiplier_worst).
        wafer_sigma = q.lognormal_sigma * 0.25
        chip_sigma = q.lognormal_sigma * 0.30
        block_sigma = q.lognormal_sigma * 0.30
        wafer_factor = np.exp(rng.normal(0.0, wafer_sigma, n_wafers))
        self._samples: list[BlockSample] = []
        for chip in range(n_chips):
            wafer = chip % n_wafers
            chip_factor = float(np.exp(rng.normal(0.0, chip_sigma)))
            block_factors = np.exp(
                rng.normal(0.0, block_sigma, blocks_per_chip)
            )
            for block in range(blocks_per_chip):
                multiplier = (
                    wafer_factor[wafer] * chip_factor * block_factors[block]
                )
                self._samples.append(
                    BlockSample(
                        chip=chip,
                        wafer=wafer,
                        block=block,
                        sigma_multiplier=float(multiplier),
                    )
                )

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[BlockSample]:
        return list(self._samples)

    def sigma_multipliers(self) -> np.ndarray:
        return np.array([s.sigma_multiplier for s in self._samples])

    def quantile_block(self, q: float) -> BlockSample:
        """The block at population quantile ``q`` of process quality
        (0 = best sigma, 1 = worst)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        ordered = sorted(self._samples, key=lambda s: s.sigma_multiplier)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def best_block(self) -> BlockSample:
        return self.quantile_block(0.0)

    def median_block(self) -> BlockSample:
        return self.quantile_block(0.5)

    def worst_block(self) -> BlockSample:
        return self.quantile_block(1.0)

    def subsample(self, n: int, *, seed: int = 0) -> list[BlockSample]:
        """A random subsample of blocks (for faster campaigns)."""
        if n > len(self._samples):
            raise ValueError("subsample larger than population")
        rng = np.random.default_rng(seed)
        indices = rng.choice(len(self._samples), size=n, replace=False)
        return [self._samples[i] for i in sorted(indices)]
