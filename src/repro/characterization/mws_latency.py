"""Figures 12-13 campaigns: MWS latency, plus functional validation.

``intra_block_latency_series`` and ``inter_block_latency_series``
report tMWS as a multiple of tR from the physically derived timing
model -- the curves of Figures 12 and 13.

``validate_mws_zero_errors`` reproduces the paper's validation
protocol functionally: program ESP pages under the worst-case stress,
run intra- and inter-block MWS on real simulated cells, and compare
against the boolean oracle across every sensed bit (the paper checks
>1e11 cells on hardware; we check a scaled population).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.chip import IscmFlags, NandFlashChip
from repro.flash.errors import OperatingCondition
from repro.flash.geometry import BlockAddress, ChipGeometry, WordlineAddress
from repro.flash.ispp import ProgramMode
from repro.flash.timing import TimingModel

INTRA_WL_GRID = (1, 4, 8, 16, 24, 32, 40, 48)
INTER_BLOCK_GRID = (1, 2, 4, 8, 16, 32)


def intra_block_latency_series(
    grid: tuple[int, ...] = INTRA_WL_GRID,
) -> list[tuple[int, float]]:
    """(n_wordlines, tMWS/tR) pairs -- Figure 12."""
    timing = TimingModel()
    t_read = timing.t_read_us
    return [(n, timing.t_mws_us(n) / t_read) for n in grid]


def inter_block_latency_series(
    grid: tuple[int, ...] = INTER_BLOCK_GRID,
) -> list[tuple[int, float]]:
    """(n_blocks, tMWS/tR) pairs (one wordline per block) -- Figure 13."""
    timing = TimingModel()
    t_read = timing.t_read_us
    return [(n, timing.t_mws_us(n, n_blocks=n) / t_read) for n in grid]


@dataclass(frozen=True)
class MwsValidation:
    """Outcome of the functional zero-error validation."""

    cells_checked: int
    bit_errors: int
    senses: int

    @property
    def error_free(self) -> bool:
        return self.bit_errors == 0


def validate_mws_zero_errors(
    *,
    page_bits: int = 2048,
    n_intra_wordlines: int = 48,
    n_inter_blocks: int = 4,
    esp_extra: float = 0.9,
    seed: int = 7,
) -> MwsValidation:
    """Program ESP data at the worst-case condition and verify MWS
    results bit-for-bit against the host oracle."""
    geometry = ChipGeometry(
        planes_per_die=1,
        blocks_per_plane=max(8, n_inter_blocks),
        subblocks_per_block=1,
        wordlines_per_string=48,
        page_size_bits=page_bits,
    )
    chip = NandFlashChip(geometry, inject_errors=True, seed=seed)
    chip.set_condition(
        OperatingCondition(
            pe_cycles=10_000, retention_months=12.0, randomized=False
        )
    )
    rng = np.random.default_rng(seed + 1)
    errors = 0
    cells = 0

    # Intra-block MWS: AND of n wordlines in block 0.
    intra_pages = []
    for wl in range(n_intra_wordlines):
        page = rng.integers(0, 2, page_bits, dtype=np.uint8)
        chip.program_page(
            WordlineAddress(0, 0, 0, wl),
            page,
            mode=ProgramMode.ESP,
            esp_extra=esp_extra,
            randomize=False,
        )
        intra_pages.append(page)
    chip.execute_sense(
        [(BlockAddress(0, 0, 0), tuple(range(n_intra_wordlines)))],
        IscmFlags(),
    )
    sensed = chip.output_cache(0)
    expected = np.bitwise_and.reduce(np.stack(intra_pages), axis=0)
    errors += int((sensed != expected).sum())
    cells += page_bits * n_intra_wordlines

    # Inter-block MWS: OR of one wordline from each of n blocks.
    inter_pages = []
    for block in range(1, 1 + n_inter_blocks):
        page = rng.integers(0, 2, page_bits, dtype=np.uint8)
        chip.program_page(
            WordlineAddress(0, block, 0, 0),
            page,
            mode=ProgramMode.ESP,
            esp_extra=esp_extra,
            randomize=False,
        )
        inter_pages.append(page)
    chip.execute_sense(
        [
            (BlockAddress(0, block, 0), (0,))
            for block in range(1, 1 + n_inter_blocks)
        ],
        IscmFlags(),
    )
    sensed = chip.output_cache(0)
    expected = np.bitwise_or.reduce(np.stack(inter_pages), axis=0)
    errors += int((sensed != expected).sum())
    cells += page_bits * n_inter_blocks

    return MwsValidation(
        cells_checked=cells,
        bit_errors=errors,
        senses=chip.counters.senses,
    )
