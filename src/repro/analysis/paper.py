"""Reference values reported by the paper, by figure/section.

Used by the benchmark harness to print paper-vs-measured rows and by
the integration tests to assert reproduction tolerances.  Every entry
cites where in the paper the number appears.
"""

from __future__ import annotations

PAPER: dict[str, dict] = {
    "fig7": {
        # Motivating timelines for 3 x 1 MiB OR (Section 3.1).
        "osp_us": 471.0,
        "isp_us": 431.0,
        "ifp_us": 335.0,
        "bottlenecks": {"osp": "external", "isp": "internal", "ifp": "sensing"},
    },
    "fig8": {
        # Section 3.2 RBER anchors.
        "mlc_rand_min": 8.6e-4,
        "mlc_norand_max": 1.6e-2,
        "slc_randomization_penalty": 1.91,
        "mlc_randomization_penalty": 4.92,
        "mlc_vs_slc_max_ratio": 4.0,
    },
    "fig11": {
        # Section 5.2 ESP results.
        "zero_error_knee_tesp": 1.9,
        "zero_error_rber": 2.07e-12,
        "median_reduction_at_1p6": 10.0,
        "validated_bits": 4.83e11,
    },
    "fig12": {
        # Intra-block MWS latency (Section 5.2).
        "ratio_at_48_wordlines": 1.033,
        "ratio_at_8_wordlines_max": 1.01,
    },
    "fig13": {
        # Inter-block MWS latency (Section 5.2).
        "ratio_at_32_blocks": 1.363,
        "hidden_until_blocks": 8,
    },
    "fig14": {
        # Inter-block MWS power (Section 5.2).
        "factor_at_2_blocks": 1.34,
        "factor_at_4_blocks": 1.80,
        "energy_saving_at_4_blocks": 0.53,
        "max_blocks_below_erase": 4,
    },
    "fig17": {
        # Performance (Section 8.1), averages across workloads.
        "fc_vs_osp_avg": 32.0,
        "fc_vs_isp_avg": 25.0,
        "fc_vs_pb_avg": 3.5,
        "pb_vs_osp_avg": 9.4,
        "isp_vs_osp_avg": 1.28,
        "bmi_fc_vs_osp_max": 198.4,
        "bmi_pb_vs_osp": 14.0,
    },
    "fig18": {
        # Energy efficiency (Section 8.2), averages across workloads.
        "fc_vs_osp_avg": 95.0,
        "fc_vs_isp_avg": 13.4,
        "fc_vs_pb_avg": 3.3,
        "bmi_m36_fc_vs_osp": 1839.0,
        "bmi_m36_fc_vs_isp": 222.0,
        "bmi_m36_fc_vs_pb": 35.5,
        "ims_fc_vs_pb_saving": 0.023,
    },
    "sec7_reliability": {
        # P(correct BMI output) at RBER 8.6e-4, m = 36 (Section 7).
        "rber": 8.6e-4,
        "p_correct": 0.42,
    },
    "sec8_3": {
        # ESP overheads (Section 8.3).
        "esp_write_bw_gbps": 4.7,
        "vs_slc": 0.734,
        "vs_mlc": 1.214,
        "vs_tlc": 1.667,
        "slc_write_bw_gbps": 6.4,
        "mlc_write_bw_gbps": 3.87,
        "tlc_write_bw_gbps": 2.82,
    },
    "table1": {
        "tr_us": 22.5,
        "tmws_us": 25.0,
        "tesp_us": 400.0,
    },
}
