"""Section 7 reliability analysis: why IFP needs zero bit errors.

The paper argues that applications with many operands are acutely
sensitive to RBER: "Assuming a best-case RBER of 8.6e-4 and m = 36,
the probability of a correct output is 0.42."  That is the per-bit
survival probability (1 - RBER)^d for d ~ 1,000 operand reads feeding
each result bit; across an 800-M-user vector the expected number of
miscounted users is then catastrophic.  These functions reproduce the
analysis exactly and generalize it.
"""

from __future__ import annotations

import math


def correct_bit_probability(rber: float, n_operands: int) -> float:
    """Probability that one result bit is computed from error-free
    operand bits: (1 - RBER)^n."""
    if not 0.0 <= rber < 1.0:
        raise ValueError("rber must be in [0, 1)")
    if n_operands < 1:
        raise ValueError("n_operands must be >= 1")
    return (1.0 - rber) ** n_operands


def correct_query_probability(
    rber: float, n_operands: int, n_result_bits: int
) -> float:
    """Probability that an entire result vector is exact.

    Computed in log space; effectively zero for any realistic vector
    at ParaBit-era RBERs -- the quantitative case for ESP."""
    if n_result_bits < 1:
        raise ValueError("n_result_bits must be >= 1")
    per_bit = correct_bit_probability(rber, n_operands)
    if per_bit == 0.0:
        return 0.0
    return math.exp(n_result_bits * math.log(per_bit))


def expected_miscounted_users(
    rber: float, n_operands: int, n_users: int
) -> float:
    """Expected number of users whose BMI result bit is corrupted."""
    if n_users < 1:
        raise ValueError("n_users must be >= 1")
    return n_users * (1.0 - correct_bit_probability(rber, n_operands))
