"""Analysis utilities: paper reference values, report formatting, and
the Section 7 reliability (error-propagation) analysis."""

from repro.analysis.paper import PAPER
from repro.analysis.reliability import (
    correct_bit_probability,
    correct_query_probability,
    expected_miscounted_users,
)
from repro.analysis.report import format_series, format_table

__all__ = [
    "PAPER",
    "correct_bit_probability",
    "correct_query_probability",
    "expected_miscounted_users",
    "format_series",
    "format_table",
]
