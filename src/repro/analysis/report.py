"""Plain-text table/series formatting for the benchmark harness.

The benches print the same rows/series the paper's figures plot, next
to the paper's reported values; these helpers keep the output uniform
and diff-friendly (EXPERIMENTS.md embeds them verbatim).
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    if not headers:
        raise ValueError("table needs headers")
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[float], *, unit: str = ""
) -> str:
    """Render one figure series as 'name: x=y' pairs."""
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    pairs = ", ".join(f"{x}={_cell(y)}{unit}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
