"""Galois field GF(2^m) arithmetic with log/antilog tables."""

from __future__ import annotations

import numpy as np

#: Default primitive polynomials (as integers, LSB = x^0) for GF(2^m).
PRIMITIVE_POLYNOMIALS = {
    2: 0b111,           # x^2 + x + 1
    3: 0b1011,          # x^3 + x + 1
    4: 0b10011,         # x^4 + x + 1
    5: 0b100101,        # x^5 + x^2 + 1
    6: 0b1000011,       # x^6 + x + 1
    7: 0b10001001,      # x^7 + x^3 + 1
    8: 0b100011101,     # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,    # x^9 + x^4 + 1
    10: 0b10000001001,  # x^10 + x^3 + 1
    11: 0b100000000101, # x^11 + x^2 + 1
    12: 0b1000001010011, # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011, # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011, # x^14 + x^10 + x^6 + x + 1
}


class GaloisField:
    """GF(2^m) with exp/log tables for fast multiply/divide."""

    def __init__(self, m: int, primitive_poly: int | None = None) -> None:
        if m < 2 or m > 16:
            raise ValueError("m must be in [2, 16]")
        if primitive_poly is None:
            try:
                primitive_poly = PRIMITIVE_POLYNOMIALS[m]
            except KeyError:
                raise ValueError(f"no default primitive polynomial for m={m}")
        self.m = m
        self.size = 1 << m
        self.order = self.size - 1  # multiplicative group order
        self.primitive_poly = primitive_poly
        self._exp = [0] * (2 * self.order)
        self._log = [0] * self.size
        x = 1
        for i in range(self.order):
            self._exp[i] = x
            self._log[x] = i
            x <<= 1
            if x & self.size:
                x ^= primitive_poly
        if x != 1:
            raise ValueError(
                f"0x{primitive_poly:x} is not primitive for GF(2^{m})"
            )
        # Duplicate the exp table so exp(a+b) needs no modulo.
        for i in range(self.order, 2 * self.order):
            self._exp[i] = self._exp[i - self.order]
        #: NumPy views of the tables for the vectorized helpers; built
        #: lazily because most fields only ever do scalar arithmetic.
        self._exp_np: np.ndarray | None = None
        self._log_np: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Field operations (addition is XOR and needs no method)
    # ------------------------------------------------------------------

    def exp(self, power: int) -> int:
        """alpha ** power (power may be any integer)."""
        return self._exp[power % self.order]

    def log(self, x: int) -> int:
        if x == 0:
            raise ValueError("log(0) is undefined")
        return self._log[x]

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^m)")
        if a == 0:
            return 0
        return self._exp[(self._log[a] - self._log[b]) % self.order]

    def inverse(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no inverse")
        return self._exp[self.order - self._log[a]]

    def pow(self, a: int, n: int) -> int:
        if a == 0:
            if n == 0:
                return 1
            if n < 0:
                raise ZeroDivisionError("negative power of zero")
            return 0
        return self._exp[(self._log[a] * n) % self.order]

    # ------------------------------------------------------------------
    # Vectorized table access (the packed-ECC fast path)
    # ------------------------------------------------------------------

    @property
    def exp_table(self) -> np.ndarray:
        """Antilog table as a read-only ``uint32`` array of length
        ``2 * order`` (doubled, so ``exp_table[la + lb]`` multiplies
        without a modulo)."""
        if self._exp_np is None:
            table = np.asarray(self._exp, dtype=np.uint32)
            table.setflags(write=False)
            self._exp_np = table
        return self._exp_np

    @property
    def log_table(self) -> np.ndarray:
        """Log table as a read-only ``int64`` array of length ``size``
        (``log_table[0]`` is 0 and must be guarded by the caller, as
        in :meth:`mul_many`)."""
        if self._log_np is None:
            table = np.asarray(self._log, dtype=np.int64)
            table.setflags(write=False)
            self._log_np = table
        return self._log_np

    def exp_many(self, powers: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`exp`: ``alpha ** p`` element-wise for an
        integer array of (possibly negative) powers."""
        idx = np.mod(np.asarray(powers, dtype=np.int64), self.order)
        return self.exp_table[idx].astype(np.uint32)

    def mul_many(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`mul` over integer arrays (broadcasting),
        with the zero-operand convention handled element-wise."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        log = self.log_table
        out = self.exp_table[log[a] + log[b]].astype(np.uint32)
        return np.where((a == 0) | (b == 0), 0, out)

    # ------------------------------------------------------------------
    # Polynomials over the field (lists of coefficients, index = degree)
    # ------------------------------------------------------------------

    def poly_eval(self, poly: list[int], x: int) -> int:
        """Evaluate a polynomial (Horner's rule)."""
        result = 0
        for coeff in reversed(poly):
            result = self.mul(result, x) ^ coeff
        return result

    def poly_mul(self, a: list[int], b: list[int]) -> list[int]:
        out = [0] * (len(a) + len(b) - 1)
        for i, ca in enumerate(a):
            if ca == 0:
                continue
            for j, cb in enumerate(b):
                if cb:
                    out[i + j] ^= self.mul(ca, cb)
        return out

    def minimal_polynomial(self, element: int) -> list[int]:
        """Minimal polynomial of a field element over GF(2).

        Built from the element's conjugacy class {e, e^2, e^4, ...};
        coefficients are guaranteed to be 0/1.
        """
        conjugates = []
        current = element
        while current not in conjugates:
            conjugates.append(current)
            current = self.mul(current, current)
        poly = [1]
        for conj in conjugates:
            poly = self.poly_mul(poly, [conj, 1])
        if any(c not in (0, 1) for c in poly):
            raise AssertionError("minimal polynomial is not binary")
        return poly
