"""CRC32 over bit arrays (end-to-end integrity checks in tests)."""

from __future__ import annotations

import zlib

import numpy as np


def crc32_bits(bits: np.ndarray) -> int:
    """CRC32 of a 0/1 bit array (packed MSB-first)."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 1:
        raise ValueError("bits must be one-dimensional")
    if not np.isin(arr, (0, 1)).all():
        raise ValueError("bits must be 0/1")
    packed = np.packbits(arr)
    return zlib.crc32(packed.tobytes()) & 0xFFFFFFFF
