"""Error-correcting codes used by SSD controllers.

Modern SSDs wrap every page in ECC (Section 2.2).  The paper's key
observation is that ECC does not commute with in-flash AND/OR: the
bitwise combination of two codewords is generally not a codeword of
the combined data, so ParaBit-style IFP cannot rely on the controller
ECC -- the motivation for ESP's zero-error programming.

This package provides a binary BCH codec (the workhorse of SLC/MLC
controllers before LDPC) built on GF(2^m) arithmetic, plus CRC32 for
end-to-end integrity checks.
"""

from repro.ecc.bch import BchCode, BchDecodeFailure
from repro.ecc.crc import crc32_bits
from repro.ecc.gf import GaloisField
from repro.ecc.page_codec import PageCodec, PageDecodeResult

__all__ = [
    "BchCode",
    "BchDecodeFailure",
    "GaloisField",
    "PageCodec",
    "PageDecodeResult",
    "crc32_bits",
]
