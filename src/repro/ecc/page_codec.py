"""Page-level ECC: interleaved BCH codewords over a flash page.

SSD controllers do not protect a 16-KiB page with one giant codeword;
they split it into interleaved codewords sized to the correction
budget (Section 2.2).  ``PageCodec`` provides that layer: encode a
logical page into a (data + parity) flash page, decode with per-
codeword correction, and report uncorrectable sectors -- the
validator that read-retry loops consult.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecc.bch import BchCode, BchDecodeFailure


@dataclass(frozen=True)
class PageDecodeResult:
    data_bits: np.ndarray
    corrected_bits: int
    failed_codewords: int

    @property
    def ok(self) -> bool:
        return self.failed_codewords == 0


class PageCodec:
    """Splits pages into interleaved BCH codewords.

    ``logical_bits`` of user data become ``physical_bits`` of stored
    page (data plus parity); both derive from the codeword count.

    With ``packed`` (the default) the interleave runs word-wide: the
    codewords become ``uint64`` lanes and encode/syndrome work is a
    handful of masked XOR reduces (:meth:`BchCode.encode_batch` /
    :meth:`BchCode.decode_batch`), with only syndrome-dirty lanes
    falling back to the scalar decoder.  ``packed=False`` keeps the
    original per-codeword byte-bit loops -- the oracle the packed path
    is property-tested against (bit-identical results, identical
    failure accounting).
    """

    def __init__(
        self, code: BchCode, n_codewords: int, *, packed: bool = True
    ) -> None:
        if n_codewords < 1:
            raise ValueError("n_codewords must be >= 1")
        self.code = code
        self.n_codewords = n_codewords
        self.packed = packed

    @property
    def logical_bits(self) -> int:
        return self.code.k * self.n_codewords

    @property
    def physical_bits(self) -> int:
        return self.code.n * self.n_codewords

    @property
    def correctable_bits_per_page(self) -> int:
        return self.code.t * self.n_codewords

    def encode_page(self, data_bits: np.ndarray) -> np.ndarray:
        data = np.asarray(data_bits, dtype=np.uint8)
        if data.shape != (self.logical_bits,):
            raise ValueError(
                f"page payload must have {self.logical_bits} bits, "
                f"got {data.shape}"
            )
        # Interleave: codeword j takes data lanes j, j+N, j+2N, ... so
        # a burst of physical errors spreads across codewords.
        chunks = data.reshape(self.code.k, self.n_codewords)
        if self.packed:
            return self.code.encode_batch(chunks).reshape(-1)
        encoded = np.empty((self.code.n, self.n_codewords), dtype=np.uint8)
        for j in range(self.n_codewords):
            encoded[:, j] = self.code.encode(chunks[:, j])
        return encoded.reshape(-1)

    def decode_page(self, stored_bits: np.ndarray) -> PageDecodeResult:
        stored = np.asarray(stored_bits, dtype=np.uint8)
        if stored.shape != (self.physical_bits,):
            raise ValueError(
                f"stored page must have {self.physical_bits} bits, "
                f"got {stored.shape}"
            )
        words = stored.reshape(self.code.n, self.n_codewords)
        if self.packed:
            data, corrected_per_lane, failed_lanes = self.code.decode_batch(
                words
            )
            return PageDecodeResult(
                data_bits=data.reshape(-1),
                corrected_bits=int(corrected_per_lane.sum()),
                failed_codewords=int(failed_lanes.sum()),
            )
        data = np.empty((self.code.k, self.n_codewords), dtype=np.uint8)
        corrected = 0
        failed = 0
        for j in range(self.n_codewords):
            try:
                decoded, n = self.code.decode(words[:, j])
            except BchDecodeFailure:
                failed += 1
                # Best effort: pass the systematic bits through.
                data[:, j] = words[: self.code.k, j]
                continue
            corrected += n
            data[:, j] = decoded
        return PageDecodeResult(
            data_bits=data.reshape(-1),
            corrected_bits=corrected,
            failed_codewords=failed,
        )
