"""Binary BCH encoder/decoder.

A binary BCH(n, k, t) code over GF(2^m) with n = 2^m - 1 corrects up
to t bit errors per codeword.  SSD controllers protect each page with
many interleaved BCH codewords (LDPC in newer drives; Section 2.2).

Encoding is systematic polynomial division by the generator; decoding
is the classic pipeline: syndromes -> Berlekamp-Massey -> Chien
search.  ``tests/ecc`` exercises roundtrips, correction up to t,
detection beyond t, and the paper's non-commutativity claim (AND/OR of
codewords is not the codeword of AND/OR of data).
"""

from __future__ import annotations

from functools import reduce

import numpy as np

from repro.ecc.gf import GaloisField


class BchDecodeFailure(Exception):
    """Raised when a received word has more errors than the code can
    correct (detected, uncorrectable)."""


class BchCode:
    """Systematic binary BCH code.

    Parameters
    ----------
    m:
        Field degree; the codeword length is n = 2^m - 1.
    t:
        Correction capability in bits per codeword.
    """

    def __init__(self, m: int, t: int) -> None:
        if t < 1:
            raise ValueError("t must be >= 1")
        self.field = GaloisField(m)
        self.n = self.field.order
        self.t = t
        self.generator = self._build_generator()
        self.n_parity = len(self.generator) - 1
        self.k = self.n - self.n_parity
        if self.k <= 0:
            raise ValueError(
                f"BCH(m={m}, t={t}) leaves no data bits (parity={self.n_parity})"
            )

    def _build_generator(self) -> list[int]:
        """g(x) = lcm of minimal polynomials of alpha^1..alpha^2t."""
        field = self.field
        seen_polys: list[tuple[int, ...]] = []
        for i in range(1, 2 * self.t + 1):
            poly = tuple(field.minimal_polynomial(field.exp(i)))
            if poly not in seen_polys:
                seen_polys.append(poly)
        product = reduce(
            lambda acc, p: field.poly_mul(acc, list(p)), seen_polys, [1]
        )
        if any(c not in (0, 1) for c in product):
            raise AssertionError("generator polynomial is not binary")
        return product

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        """Encode k data bits into an n-bit systematic codeword
        (data first, then parity)."""
        data = self._check_bits(data_bits, self.k, "data")
        # Polynomial division of data(x) * x^parity by g(x) over GF(2).
        # Convention: array index j holds the coefficient of x^(n-1-j),
        # so data[0] is the highest-degree coefficient and is fed into
        # the division register first.
        remainder = np.zeros(self.n_parity, dtype=np.uint8)
        gen = np.array(self.generator[:-1], dtype=np.uint8)  # monic: drop top
        for bit in data:
            feedback = bit ^ remainder[-1]
            remainder[1:] = remainder[:-1]
            remainder[0] = 0
            if feedback:
                remainder ^= gen * feedback
        # remainder[i] holds the x^i parity coefficient; reverse it so
        # the codeword keeps the index -> x^(n-1-index) convention.
        return np.concatenate([data, remainder[::-1]]).astype(np.uint8)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def syndromes(self, codeword: np.ndarray) -> list[int]:
        """S_i = r(alpha^i) for i = 1..2t; all zero iff r is a
        codeword (up to undetectable error patterns)."""
        word = self._check_bits(codeword, self.n, "codeword")
        field = self.field
        out = []
        positions = np.nonzero(word)[0]
        for i in range(1, 2 * self.t + 1):
            s = 0
            for pos in positions:
                # Bit layout: index 0 is the x^(n-1) coefficient of the
                # systematic polynomial? We store data||parity with
                # index j representing coefficient x^(n-1-j) after the
                # encode convention below; using exponent (n-1-j).
                s ^= field.exp(i * (self.n - 1 - int(pos)))
            out.append(s)
        return out

    def decode(self, received: np.ndarray) -> tuple[np.ndarray, int]:
        """Decode an n-bit received word.

        Returns (data_bits, n_corrected).  Raises
        :class:`BchDecodeFailure` when more than t errors are detected.
        """
        word = self._check_bits(received, self.n, "received").copy()
        synd = self.syndromes(word)
        if not any(synd):
            return word[: self.k].copy(), 0
        locator = self._berlekamp_massey(synd)
        n_errors = len(locator) - 1
        if n_errors > self.t:
            raise BchDecodeFailure(
                f"error locator degree {n_errors} exceeds t={self.t}"
            )
        positions = self._chien_search(locator)
        if len(positions) != n_errors:
            raise BchDecodeFailure(
                "error locator does not split over the field "
                f"(found {len(positions)} of {n_errors} roots)"
            )
        for pos in positions:
            word[pos] ^= 1
        if any(self.syndromes(word)):
            raise BchDecodeFailure("residual syndrome after correction")
        return word[: self.k].copy(), n_errors

    def _berlekamp_massey(self, syndromes: list[int]) -> list[int]:
        """Error-locator polynomial sigma(x) from the syndromes."""
        field = self.field
        sigma = [1]
        prev_sigma = [1]
        prev_discrepancy = 1
        shift = 1
        for step, s in enumerate(syndromes):
            discrepancy = s
            for j in range(1, len(sigma)):
                if j <= step:
                    discrepancy ^= field.mul(sigma[j], syndromes[step - j])
            if discrepancy == 0:
                shift += 1
                continue
            scale = field.div(discrepancy, prev_discrepancy)
            candidate = sigma.copy()
            shifted = [0] * shift + [field.mul(scale, c) for c in prev_sigma]
            if len(shifted) > len(candidate):
                candidate += [0] * (len(shifted) - len(candidate))
            for j, c in enumerate(shifted):
                candidate[j] ^= c
            if 2 * (len(sigma) - 1) <= step:
                prev_sigma = sigma
                prev_discrepancy = discrepancy
                sigma = candidate
                shift = 1
            else:
                sigma = candidate
                shift += 1
        while len(sigma) > 1 and sigma[-1] == 0:
            sigma.pop()
        return sigma

    def _chien_search(self, locator: list[int]) -> list[int]:
        """Find error bit positions from the locator polynomial."""
        field = self.field
        positions = []
        for j in range(self.n):
            # Candidate error at bit index j corresponds to the
            # coefficient x^(n-1-j); its locator root is alpha^-(n-1-j).
            x = field.exp(-(self.n - 1 - j))
            if field.poly_eval(locator, x) == 0:
                positions.append(j)
        return positions

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _check_bits(bits: np.ndarray, expected: int, label: str) -> np.ndarray:
        arr = np.asarray(bits, dtype=np.uint8)
        if arr.shape != (expected,):
            raise ValueError(f"{label} must have {expected} bits, got {arr.shape}")
        if not np.isin(arr, (0, 1)).all():
            raise ValueError(f"{label} must be 0/1 bits")
        return arr

    def __repr__(self) -> str:
        return f"BchCode(n={self.n}, k={self.k}, t={self.t})"
