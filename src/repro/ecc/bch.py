"""Binary BCH encoder/decoder.

A binary BCH(n, k, t) code over GF(2^m) with n = 2^m - 1 corrects up
to t bit errors per codeword.  SSD controllers protect each page with
many interleaved BCH codewords (LDPC in newer drives; Section 2.2).

Encoding is systematic polynomial division by the generator; decoding
is the classic pipeline: syndromes -> Berlekamp-Massey -> Chien
search.  ``tests/ecc`` exercises roundtrips, correction up to t,
detection beyond t, and the paper's non-commutativity claim (AND/OR of
codewords is not the codeword of AND/OR of data).

The scalar methods above stay the reference implementation; the
``*_batch`` methods run the same algebra word-wide.  Interleaved
codewords become *lanes*: bit ``l`` of a ``uint64`` lane word is
codeword ``l % 64`` of word ``l // 64``, so the whole interleave of a
page encodes/checks in a handful of XOR reduces.  Parity is a GF(2)
matrix product against a precomputed contribution table (the
remainder of ``x^(n-1-i) mod g`` per data row); syndromes are
bit-sliced -- one packed plane per (syndrome, GF bit) pair, each the
XOR of the codeword rows whose precomputed coefficient
``alpha^(i*(n-1-r))`` has that bit set.  Lanes whose syndromes are all
zero finish right there; dirty lanes fall back to the scalar
:meth:`BchCode.decode`, so correction behaviour and
:class:`BchDecodeFailure` typing are identical by construction.
"""

from __future__ import annotations

from functools import reduce

import numpy as np

from repro.ecc.gf import GaloisField

#: Lanes per packed word (mirrors ``repro.flash.packing.WORD_BITS``).
LANE_WORD_BITS = 64

_FULL_LANE_WORD = np.uint64(0xFFFF_FFFF_FFFF_FFFF)


def pack_lanes(matrix: np.ndarray) -> np.ndarray:
    """Pack a ``(rows, lanes)`` 0/1 matrix into ``(rows, words)``
    ``uint64`` lane words (lane ``l`` -> bit ``l % 64`` of word
    ``l // 64``).

    Padding lanes are **zero**, unlike the ones-padding of
    ``repro.flash.packing.pack_rows``: a padding lane must behave as an
    absent codeword, and only all-zero lanes contribute nothing to the
    parity XOR and produce all-zero syndromes.
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
    if matrix.ndim != 2:
        raise ValueError("pack_lanes expects a 2-D (rows, lanes) array")
    n_rows, n_lanes = matrix.shape
    n_bytes = -(-n_lanes // LANE_WORD_BITS) * (LANE_WORD_BITS // 8)
    packed = np.packbits(matrix, axis=1, bitorder="little")
    if packed.shape[1] != n_bytes:
        padded = np.zeros((n_rows, n_bytes), dtype=np.uint8)
        padded[:, : packed.shape[1]] = packed
        packed = padded
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_lanes(words: np.ndarray, n_lanes: int) -> np.ndarray:
    """Inverse of :func:`pack_lanes`, truncating padding lanes."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError("unpack_lanes expects a 2-D (rows, words) array")
    flat = np.unpackbits(words.view(np.uint8), axis=1, bitorder="little")
    return flat[:, :n_lanes]


class BchDecodeFailure(Exception):
    """Raised when a received word has more errors than the code can
    correct (detected, uncorrectable)."""


class BchCode:
    """Systematic binary BCH code.

    Parameters
    ----------
    m:
        Field degree; the codeword length is n = 2^m - 1.
    t:
        Correction capability in bits per codeword.
    """

    def __init__(self, m: int, t: int) -> None:
        if t < 1:
            raise ValueError("t must be >= 1")
        self.field = GaloisField(m)
        self.n = self.field.order
        self.t = t
        self.generator = self._build_generator()
        self.n_parity = len(self.generator) - 1
        self.k = self.n - self.n_parity
        if self.k <= 0:
            raise ValueError(
                f"BCH(m={m}, t={t}) leaves no data bits (parity={self.n_parity})"
            )
        # Lazy word-wide tables (see module docstring): built on the
        # first *_batch call, immutable afterwards.
        self._parity_masks: np.ndarray | None = None
        self._syndrome_masks: np.ndarray | None = None

    def _build_generator(self) -> list[int]:
        """g(x) = lcm of minimal polynomials of alpha^1..alpha^2t."""
        field = self.field
        seen_polys: list[tuple[int, ...]] = []
        for i in range(1, 2 * self.t + 1):
            poly = tuple(field.minimal_polynomial(field.exp(i)))
            if poly not in seen_polys:
                seen_polys.append(poly)
        product = reduce(
            lambda acc, p: field.poly_mul(acc, list(p)), seen_polys, [1]
        )
        if any(c not in (0, 1) for c in product):
            raise AssertionError("generator polynomial is not binary")
        return product

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        """Encode k data bits into an n-bit systematic codeword
        (data first, then parity)."""
        data = self._check_bits(data_bits, self.k, "data")
        # Polynomial division of data(x) * x^parity by g(x) over GF(2).
        # Convention: array index j holds the coefficient of x^(n-1-j),
        # so data[0] is the highest-degree coefficient and is fed into
        # the division register first.
        remainder = np.zeros(self.n_parity, dtype=np.uint8)
        gen = np.array(self.generator[:-1], dtype=np.uint8)  # monic: drop top
        for bit in data:
            feedback = bit ^ remainder[-1]
            remainder[1:] = remainder[:-1]
            remainder[0] = 0
            if feedback:
                remainder ^= gen * feedback
        # remainder[i] holds the x^i parity coefficient; reverse it so
        # the codeword keeps the index -> x^(n-1-index) convention.
        return np.concatenate([data, remainder[::-1]]).astype(np.uint8)

    def _parity_mask_table(self) -> np.ndarray:
        """``(k, n_parity, 1)`` ``uint64`` broadcast masks: lane word
        of data row ``i`` feeds parity row ``j`` (codeword index
        ``k + j``, coefficient ``x^(n_parity-1-j)``) iff bit
        ``n_parity-1-j`` of ``x^(n-1-i) mod g`` is set."""
        if self._parity_masks is None:
            n_parity = self.n_parity
            g_low = 0  # g(x) minus its monic top term, LSB = x^0
            for degree in range(n_parity):
                if self.generator[degree]:
                    g_low |= 1 << degree
            contrib = np.zeros((self.k, n_parity), dtype=bool)
            # Data index k-1 sits at degree n_parity; each lower index
            # is one more multiplication by x (mod g).
            current = g_low
            for i in range(self.k - 1, -1, -1):
                for r in range(n_parity):
                    if (current >> r) & 1:
                        contrib[i, n_parity - 1 - r] = True
                if i:
                    current <<= 1
                    if (current >> n_parity) & 1:
                        current ^= (1 << n_parity) | g_low
            masks = np.where(
                contrib[:, :, None], _FULL_LANE_WORD, np.uint64(0)
            )
            masks.setflags(write=False)
            self._parity_masks = masks
        return self._parity_masks

    def encode_batch(self, data: np.ndarray) -> np.ndarray:
        """Encode every column of a ``(k, lanes)`` 0/1 matrix at once.

        Column ``j`` of the returned ``(n, lanes)`` matrix is
        bit-identical to ``encode(data[:, j])``.  The parity block is
        one masked XOR reduce over the packed lane words instead of a
        per-bit division loop per codeword.
        """
        data = np.ascontiguousarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != self.k:
            raise ValueError(
                f"data must have shape ({self.k}, lanes), got {data.shape}"
            )
        if not np.isin(data, (0, 1)).all():
            raise ValueError("data must be 0/1 bits")
        lanes = pack_lanes(data)  # (k, W)
        masks = self._parity_mask_table()  # (k, n_parity, 1)
        parity = np.bitwise_xor.reduce(lanes[:, None, :] & masks, axis=0)
        out = np.empty((self.n, data.shape[1]), dtype=np.uint8)
        out[: self.k] = data
        out[self.k :] = unpack_lanes(parity, data.shape[1])
        return out

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def syndromes(self, codeword: np.ndarray) -> list[int]:
        """S_i = r(alpha^i) for i = 1..2t; all zero iff r is a
        codeword (up to undetectable error patterns)."""
        word = self._check_bits(codeword, self.n, "codeword")
        field = self.field
        out = []
        positions = np.nonzero(word)[0]
        for i in range(1, 2 * self.t + 1):
            s = 0
            for pos in positions:
                # Bit layout: index 0 is the x^(n-1) coefficient of the
                # systematic polynomial? We store data||parity with
                # index j representing coefficient x^(n-1-j) after the
                # encode convention below; using exponent (n-1-j).
                s ^= field.exp(i * (self.n - 1 - int(pos)))
            out.append(s)
        return out

    def decode(self, received: np.ndarray) -> tuple[np.ndarray, int]:
        """Decode an n-bit received word.

        Returns (data_bits, n_corrected).  Raises
        :class:`BchDecodeFailure` when more than t errors are detected.
        """
        word = self._check_bits(received, self.n, "received").copy()
        synd = self.syndromes(word)
        if not any(synd):
            return word[: self.k].copy(), 0
        locator = self._berlekamp_massey(synd)
        n_errors = len(locator) - 1
        if n_errors > self.t:
            raise BchDecodeFailure(
                f"error locator degree {n_errors} exceeds t={self.t}"
            )
        positions = self._chien_search(locator)
        if len(positions) != n_errors:
            raise BchDecodeFailure(
                "error locator does not split over the field "
                f"(found {len(positions)} of {n_errors} roots)"
            )
        for pos in positions:
            word[pos] ^= 1
        if any(self.syndromes(word)):
            raise BchDecodeFailure("residual syndrome after correction")
        return word[: self.k].copy(), n_errors

    def _syndrome_mask_table(self) -> np.ndarray:
        """``(2t, m, n, 1)`` ``uint64`` broadcast masks: codeword row
        ``r`` feeds the bit plane ``(i, b)`` iff bit ``b`` of
        ``alpha^((i+1) * (n-1-r))`` is set."""
        if self._syndrome_masks is None:
            powers = np.outer(
                np.arange(1, 2 * self.t + 1, dtype=np.int64),
                np.int64(self.n - 1) - np.arange(self.n, dtype=np.int64),
            )
            coefficients = self.field.exp_many(powers)  # (2t, n)
            bits = (
                coefficients[:, None, :]
                >> np.arange(self.field.m, dtype=np.uint32)[None, :, None]
            ) & 1
            masks = np.where(
                bits[:, :, :, None].astype(bool),
                _FULL_LANE_WORD,
                np.uint64(0),
            )
            masks.setflags(write=False)
            self._syndrome_masks = masks
        return self._syndrome_masks

    def syndromes_batch(self, received: np.ndarray) -> np.ndarray:
        """Syndromes of every column of a ``(n, lanes)`` 0/1 matrix.

        Returns a ``(2t, lanes)`` integer matrix whose column ``j``
        equals ``syndromes(received[:, j])``.  Computed bit-sliced:
        every (syndrome, GF-bit) plane is one masked XOR reduce over
        the packed lane words.
        """
        words = np.ascontiguousarray(received, dtype=np.uint8)
        if words.ndim != 2 or words.shape[0] != self.n:
            raise ValueError(
                f"received must have shape ({self.n}, lanes), "
                f"got {words.shape}"
            )
        if not np.isin(words, (0, 1)).all():
            raise ValueError("received must be 0/1 bits")
        lanes = pack_lanes(words)  # (n, W)
        masks = self._syndrome_mask_table()  # (2t, m, n, 1)
        planes = np.bitwise_xor.reduce(
            lanes[None, None, :, :] & masks, axis=2
        )  # (2t, m, W)
        bits = np.unpackbits(
            planes.view(np.uint8).reshape(planes.shape[0], planes.shape[1], -1),
            axis=2,
            bitorder="little",
        )[:, :, : words.shape[1]]
        weights = (
            np.int64(1) << np.arange(self.field.m, dtype=np.int64)
        )[None, :, None]
        return (bits.astype(np.int64) * weights).sum(axis=1)

    def decode_batch(
        self, received: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decode every column of a ``(n, lanes)`` 0/1 matrix.

        Returns ``(data, corrected, failed)`` where ``data`` is the
        ``(k, lanes)`` decoded payload, ``corrected`` the per-lane
        corrected-bit count and ``failed`` a per-lane bool mask of
        detected-uncorrectable words (their systematic bits pass
        through, matching the page codec's best-effort convention).

        Lanes whose batch syndromes are all zero never touch the
        scalar machinery; dirty lanes run the exact scalar
        :meth:`decode`, so per-lane corrections and
        :class:`BchDecodeFailure` classification are identical to the
        byte-bit path by construction.
        """
        words = np.ascontiguousarray(received, dtype=np.uint8)
        syndromes = self.syndromes_batch(words)  # validates shape/bits
        data = words[: self.k].copy()
        n_lanes = words.shape[1]
        corrected = np.zeros(n_lanes, dtype=np.int64)
        failed = np.zeros(n_lanes, dtype=bool)
        for lane in np.nonzero(syndromes.any(axis=0))[0]:
            try:
                decoded, n_errors = self.decode(words[:, lane])
            except BchDecodeFailure:
                failed[lane] = True
                continue
            data[:, lane] = decoded
            corrected[lane] = n_errors
        return data, corrected, failed

    def _berlekamp_massey(self, syndromes: list[int]) -> list[int]:
        """Error-locator polynomial sigma(x) from the syndromes."""
        field = self.field
        sigma = [1]
        prev_sigma = [1]
        prev_discrepancy = 1
        shift = 1
        for step, s in enumerate(syndromes):
            discrepancy = s
            for j in range(1, len(sigma)):
                if j <= step:
                    discrepancy ^= field.mul(sigma[j], syndromes[step - j])
            if discrepancy == 0:
                shift += 1
                continue
            scale = field.div(discrepancy, prev_discrepancy)
            candidate = sigma.copy()
            shifted = [0] * shift + [field.mul(scale, c) for c in prev_sigma]
            if len(shifted) > len(candidate):
                candidate += [0] * (len(shifted) - len(candidate))
            for j, c in enumerate(shifted):
                candidate[j] ^= c
            if 2 * (len(sigma) - 1) <= step:
                prev_sigma = sigma
                prev_discrepancy = discrepancy
                sigma = candidate
                shift = 1
            else:
                sigma = candidate
                shift += 1
        while len(sigma) > 1 and sigma[-1] == 0:
            sigma.pop()
        return sigma

    def _chien_search(self, locator: list[int]) -> list[int]:
        """Find error bit positions from the locator polynomial."""
        field = self.field
        positions = []
        for j in range(self.n):
            # Candidate error at bit index j corresponds to the
            # coefficient x^(n-1-j); its locator root is alpha^-(n-1-j).
            x = field.exp(-(self.n - 1 - j))
            if field.poly_eval(locator, x) == 0:
                positions.append(j)
        return positions

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _check_bits(bits: np.ndarray, expected: int, label: str) -> np.ndarray:
        arr = np.asarray(bits, dtype=np.uint8)
        if arr.shape != (expected,):
            raise ValueError(f"{label} must have {expected} bits, got {arr.shape}")
        if not np.isin(arr, (0, 1)).all():
            raise ValueError(f"{label} must be 0/1 bits")
        return arr

    def __repr__(self) -> str:
        return f"BchCode(n={self.n}, k={self.k}, t={self.t})"
