"""Setuptools shim.

The execution environment has no network access and no `wheel`
package, so PEP 660 editable installs (`pip install -e .`) cannot
build the editable wheel.  This shim lets pip fall back to the legacy
`setup.py develop` editable path (`pip install -e . --no-use-pep517`)
and keeps plain `python setup.py develop` working.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
